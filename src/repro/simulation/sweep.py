"""Scalability sweeps: run one query over a grid of (parameter, k) cells.

This is the workhorse behind Figs. 10(a)/(b) and 11: it runs the SPECTRE
engine for every combination of a query parameter (pattern size, band,
probability model, ...) and an instance count, collects virtual
throughput plus the run statistics, and verifies every run against the
sequential ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.events.event import Event
from repro.patterns.query import Query
from repro.sequential.engine import SequentialEngine
from repro.spectre.config import SpectreConfig
from repro.spectre.engine import SpectreEngine, SpectreResult

QueryFactory = Callable[[], Query]
ConfigFactory = Callable[[int], SpectreConfig]


@dataclass
class ScalabilityCell:
    """One (parameter, k) measurement."""

    parameter: object
    k: int
    virtual_throughput: float
    ground_truth_probability: float
    result: SpectreResult

    @property
    def stats(self):
        return self.result.stats


def default_config(k: int) -> SpectreConfig:
    return SpectreConfig(k=k)


def scalability_sweep(
    parameters: Sequence[object],
    query_for: Callable[[object], Query],
    events: Sequence[Event],
    ks: Iterable[int] = (1, 2, 4, 8, 16, 32),
    config_for: ConfigFactory = default_config,
    verify: bool = True,
) -> list[ScalabilityCell]:
    """Run the full grid; optionally verify output equivalence per cell."""
    cells: list[ScalabilityCell] = []
    for parameter in parameters:
        query = query_for(parameter)
        sequential = SequentialEngine(query).run(events)
        expected = sequential.identities()
        for k in ks:
            engine = SpectreEngine(query, config_for(k))
            result = engine.run(events)
            if verify and result.identities() != expected:
                raise AssertionError(
                    f"SPECTRE output diverged from sequential ground truth "
                    f"at parameter={parameter!r}, k={k}")
            cells.append(ScalabilityCell(
                parameter=parameter,
                k=k,
                virtual_throughput=result.throughput,
                ground_truth_probability=sequential.completion_probability,
                result=result,
            ))
    return cells
