"""Simulated-parallelism support: calibration and sweep drivers."""

from repro.simulation.calibration import (
    CalibratedThroughput,
    calibrate,
    virtual_to_events_per_second,
)
from repro.simulation.sweep import ScalabilityCell, scalability_sweep

__all__ = [
    "calibrate",
    "virtual_to_events_per_second",
    "CalibratedThroughput",
    "scalability_sweep",
    "ScalabilityCell",
]
