"""Virtual-time → wall-clock calibration.

The simulated runtime charges one abstract cost unit per processed event
(see :class:`repro.spectre.config.CostModel`).  The paper's absolute
throughputs (events/second) come from its 2×10-core Xeon; we anchor the
virtual unit so that a chosen baseline cell — by convention the k=1
configuration — corresponds to the paper's single-instance rate, and
express every other cell through the *same* unit.  Only the anchor is
fitted; all ratios are produced by the speculation model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class CalibratedThroughput:
    """A virtual throughput mapped onto events/second."""

    virtual: float
    events_per_second: float


def calibrate(baseline_virtual: float,
              baseline_events_per_second: float = 10_000.0) -> float:
    """Seconds-per-virtual-unit that pins the baseline cell.

    ``virtual_throughput * scale = events_per_second`` with
    ``scale = baseline_events_per_second / baseline_virtual``.
    """
    if baseline_virtual <= 0:
        raise ValueError("baseline virtual throughput must be positive")
    return baseline_events_per_second / baseline_virtual


def virtual_to_events_per_second(
        virtual_by_key: Mapping, baseline_key,
        baseline_events_per_second: float = 10_000.0
) -> dict:
    """Calibrate a whole sweep against one anchor cell."""
    scale = calibrate(virtual_by_key[baseline_key],
                      baseline_events_per_second)
    return {
        key: CalibratedThroughput(virtual=value,
                                  events_per_second=value * scale)
        for key, value in virtual_by_key.items()
    }
