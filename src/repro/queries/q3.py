"""Query Q3 (Fig. 9): unordered symbol set.

``PATTERN (A SET(X1 ... Xn)) WITHIN ws events FROM every s events
CONSUME (A SET(X1 ... Xn))``

After an occurrence of symbol A, the window must contain each of n
specific symbols in any order ("the ordering of those n symbols is not
important").  δ counts the symbols still missing, so every *distinct* new
set member moves the detection to a higher completion stage — the query
driving the Markov-model evaluation (Fig. 11).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.query import Query
from repro.queries.udf import UDFMatch
from repro.windows.specs import WindowSpec


class Q3Detector(Detector):
    """UDF detector: anchor symbol followed by an unordered symbol set."""

    def __init__(self, anchor_symbol: str, set_symbols: frozenset[str],
                 consume: bool) -> None:
        self._anchor_symbol = anchor_symbol
        self._set_symbols = set_symbols
        self._consume = consume
        self._match: Optional[UDFMatch] = None
        self._missing: set[str] = set()
        self._done = False
        self._closed = False

    @property
    def delta_max(self) -> int:
        return len(self._set_symbols) + 1

    @property
    def done(self) -> bool:
        return self._done or self._closed

    def process(self, event: Event) -> Feedback:
        feedback = Feedback()
        if self.done:
            return feedback
        symbol = event.attributes.get("symbol")

        if self._match is None:
            if symbol == self._anchor_symbol:
                match = UDFMatch(match_id=0, delta=len(self._set_symbols))
                match.bind(event, consumed=self._consume)
                self._match = match
                self._missing = set(self._set_symbols)
                feedback.created.append(match)
                if self._consume:
                    feedback.added.append((match, event))
            return feedback

        if symbol not in self._missing:
            return feedback
        self._missing.discard(symbol)
        match = self._match
        match.bind(event, consumed=self._consume,
                   delta_after=len(self._missing))
        if self._consume:
            feedback.added.append((match, event))
        if not self._missing:
            consumed = match.consumable if self._consume else ()
            feedback.completed.append(Completion(
                match=match,
                constituents=match.constituents,
                consumed=tuple(consumed),
                attributes={"set_size": len(self._set_symbols)},
            ))
            self._match = None
            self._done = True
        return feedback

    def close(self) -> Feedback:
        feedback = Feedback()
        if not self._closed:
            if self._match is not None:
                feedback.abandoned.append(self._match)
                self._match = None
            self._closed = True
        return feedback


def make_q3(anchor_symbol: str, set_symbols: Iterable[str],
            window_size: int, slide: int, consume: bool = True) -> Query:
    """Build Q3: ``anchor_symbol`` followed by the ``set_symbols`` set."""
    members = frozenset(set_symbols)
    if anchor_symbol in members:
        raise ValueError("anchor symbol must not be in the SET")
    if not members:
        raise ValueError("the SET needs at least one symbol")
    consumption = ConsumptionPolicy.all() if consume else \
        ConsumptionPolicy.none()

    def factory(start_event: Event) -> Detector:
        return Q3Detector(anchor_symbol=anchor_symbol, set_symbols=members,
                          consume=consume)

    return Query(
        name=f"Q3(n={len(members)},ws={window_size},s={slide})",
        window=WindowSpec.count_sliding(window_size, slide),
        detector_factory=factory,
        delta_max=len(members) + 1,
        selection=SelectionPolicy.FIRST,
        consumption=consumption,
        description="anchor symbol followed by an unordered symbol set",
    )
