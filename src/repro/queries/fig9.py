"""The Fig. 9 evaluation queries in the paper's MATCH-RECOGNIZE notation.

The hand-written UDF detectors (:func:`~repro.queries.q1.make_q1`,
:func:`~repro.queries.q2.make_q2`) mirror the original deployment, where
"the pattern detection and window splitting logic of the queries [...]
are implemented as a user-defined function (UDF) inside SPECTRE"
(Sec. 4.1).  The *published* form of those queries, however, is the
Fig. 9 query text — this module renders that text so it can be fed
through :func:`~repro.patterns.parser.parse_query` and run on the
generic NFA detector.

``tests/test_parser_udf_parity.py`` asserts that both forms detect the
identical complex events and consume the identical events on generated
NYSE-like data; the ``serve`` CLI and the multi-query hub accept these
texts directly.
"""

from __future__ import annotations

from typing import Iterable

from repro.patterns.parser import parse_query
from repro.patterns.query import Query


def q1_text(q: int, window_size: int,
            leading_symbols: Iterable[str]) -> str:
    """Q1 (Fig. 9): leading-symbol momentum, pattern size ``q``.

    ``PATTERN (MLE RE1 ... REq) ... WITHIN ws events FROM MLE``: a
    window opens on a rising or falling quote of a leading symbol, and
    the first ``q`` quotes moving in the same direction complete the
    pattern.  "Same direction" needs a disjunction per ``REi`` —
    exactly what the parser's ``OR`` support exists for.
    """
    leaders = " OR ".join(f"MLE.symbol = '{symbol}'"
                          for symbol in leading_symbols)
    res = [f"RE{i}" for i in range(1, q + 1)]
    defines = [f"    MLE AS (({leaders}) AND "
               f"(MLE.closePrice > MLE.openPrice OR "
               f"MLE.closePrice < MLE.openPrice))"]
    for re in res:
        defines.append(
            f"    {re} AS (({re}.closePrice > {re}.openPrice AND "
            f"MLE.closePrice > MLE.openPrice) OR "
            f"({re}.closePrice < {re}.openPrice AND "
            f"MLE.closePrice < MLE.openPrice))")
    return (f"PATTERN (MLE {' '.join(res)})\n"
            f"DEFINE\n" + ",\n".join(defines) + "\n"
            f"WITHIN {window_size} events FROM MLE\n"
            f"CONSUME (MLE {' '.join(res)})")


def make_q1_parsed(q: int, window_size: int,
                   leading_symbols: Iterable[str]) -> Query:
    """Q1 built from its Fig. 9 text (NFA detector, anchored at MLE)."""
    return parse_query(q1_text(q, window_size, leading_symbols),
                       name=f"Q1(q={q},ws={window_size})")


# Q2's oscillation A B+ C D+ E F+ G H+ I J+ K L+ M: even symbols are the
# mandatory extremes (below, above, below, ...), odd symbols the Kleene
# "between" stages
_Q2_SYMBOLS = "ABCDEFGHIJKLM"
_Q2_BELOW = "AEIM"
_Q2_ABOVE = "CGK"


def q2_text(window_size: int, slide: int) -> str:
    """Q2 (Fig. 9): Balkesen & Tatbul's price-band oscillation.

    The band limits stay free parameters (``lowerLimit`` /
    ``upperLimit``), matching how Fig. 9 prints the query; supply them
    via ``parse_query(..., params=...)``.
    """
    pattern = []
    defines = []
    for index, symbol in enumerate(_Q2_SYMBOLS):
        if index % 2 == 1:  # Kleene "between" stage
            pattern.append(symbol + "+")
            defines.append(f"    {symbol} AS ({symbol}.closePrice > "
                           f"lowerLimit AND {symbol}.closePrice < "
                           f"upperLimit)")
        elif symbol in _Q2_BELOW:
            pattern.append(symbol)
            defines.append(f"    {symbol} AS ({symbol}.closePrice < "
                           f"lowerLimit)")
        else:
            assert symbol in _Q2_ABOVE
            pattern.append(symbol)
            defines.append(f"    {symbol} AS ({symbol}.closePrice > "
                           f"upperLimit)")
    return (f"PATTERN ({' '.join(pattern)})\n"
            f"DEFINE\n" + ",\n".join(defines) + "\n"
            f"WITHIN {window_size} events FROM every {slide} events\n"
            f"CONSUME ({' '.join(pattern)})")


def make_q2_parsed(lower: float, upper: float, window_size: int,
                   slide: int) -> Query:
    """Q2 built from its Fig. 9 text (NFA detector)."""
    return parse_query(q2_text(window_size, slide),
                       name=f"Q2({lower},{upper},ws={window_size},"
                            f"s={slide})",
                       params={"lowerLimit": lower, "upperLimit": upper})
