"""Shared plumbing for UDF detectors."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.events.event import Event
from repro.matching.base import PartialMatch


class UDFMatch(PartialMatch):
    """A partial match tracked by a hand-written detector.

    The detector updates ``_delta`` as the match progresses and appends
    bound events to ``bound`` / ``consumable_events``.
    """

    __slots__ = ("match_id", "bound", "consumable_events", "_delta")

    def __init__(self, match_id: int, delta: int) -> None:
        self.match_id = match_id
        self.bound: list[Event] = []
        self.consumable_events: list[Event] = []
        self._delta = delta

    def bind(self, event: Event, consumed: bool,
             delta_after: Optional[int] = None) -> None:
        self.bound.append(event)
        if consumed:
            self.consumable_events.append(event)
        if delta_after is not None:
            self._delta = delta_after

    @property
    def delta(self) -> int:
        return self._delta

    @delta.setter
    def delta(self, value: int) -> None:
        self._delta = value

    @property
    def consumable(self) -> Sequence[Event]:
        return tuple(self.consumable_events)

    @property
    def constituents(self) -> tuple[Event, ...]:
        return tuple(self.bound)


def is_rising(event: Event) -> bool:
    """Quote with a higher close than open price."""
    return event.attributes["closePrice"] > event.attributes["openPrice"]

def is_falling(event: Event) -> bool:
    """Quote with a lower close than open price."""
    return event.attributes["closePrice"] < event.attributes["openPrice"]
