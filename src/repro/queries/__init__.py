"""The paper's evaluation queries (Fig. 9) as UDF detectors.

Like the original SPECTRE, "the pattern detection and window splitting
logic of the queries in these evaluations are implemented as a
user-defined function (UDF) inside SPECTRE" (Sec. 4.1) — each query here
ships a hand-written detector implementing the Fig. 8 feedback protocol.

* :func:`make_q1` — first q rising (or falling) quotes within ws events
  of a rising (falling) quote of a leading symbol; fixed pattern length.
* :func:`make_q2` — Balkesen & Tatbul's price-band oscillation pattern
  ``A B+ C D+ E F+ G H+ I J+ K L+ M`` with variable pattern length.
* :func:`make_q3` — symbol A followed by an unordered SET of n symbols.
* :func:`make_qe` — the Sec. 2.1 running example (A correlated with each
  B within 1 minute), with pluggable consumption policy.
"""

from repro.queries.fig9 import (
    make_q1_parsed,
    make_q2_parsed,
    q1_text,
    q2_text,
)
from repro.queries.q1 import make_q1
from repro.queries.q2 import make_q2
from repro.queries.q3 import make_q3
from repro.queries.qe import make_qe

__all__ = ["make_q1", "make_q2", "make_q3", "make_qe",
           "make_q1_parsed", "make_q2_parsed", "q1_text", "q2_text"]
