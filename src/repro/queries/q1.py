"""Query Q1 (Fig. 9): leading-symbol momentum.

``PATTERN (MLE RE1 RE2 ... REq) ... WITHIN ws events FROM MLE
CONSUME (MLE RE1 ... REq)``

A window opens on every rising or falling quote of a *leading* symbol
(MLE).  Inside the window, the first q quotes moving in the same direction
(of any symbol) complete the pattern; all q+1 constituents are consumed.
"This query always has a fixed pattern length of q, and each matching
event moves the pattern detection to a higher completion stage."
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.query import Query
from repro.queries.udf import UDFMatch, is_falling, is_rising
from repro.windows.specs import WindowSpec


class Q1Detector(Detector):
    """UDF detector for one Q1 window (anchored at its MLE event)."""

    def __init__(self, anchor: Event, q: int, consume: bool) -> None:
        self._anchor = anchor
        self._q = q
        self._consume = consume
        self._match: Optional[UDFMatch] = None
        self._rising: Optional[bool] = None
        self._done = False
        self._closed = False

    @property
    def delta_max(self) -> int:
        return self._q

    @property
    def done(self) -> bool:
        return self._done or self._closed

    def process(self, event: Event) -> Feedback:
        feedback = Feedback()
        if self.done:
            return feedback
        if self._match is None:
            # the pattern starts with the window's own MLE event; if the
            # anchor was consumed elsewhere this window can never match
            if event.seq != self._anchor.seq:
                return feedback
            direction_rising = is_rising(event)
            if not direction_rising and not is_falling(event):
                return feedback  # unchanged quote opens no pattern
            self._rising = direction_rising
            match = UDFMatch(match_id=0, delta=self._q)
            match.bind(event, consumed=self._consume)
            self._match = match
            feedback.created.append(match)
            if self._consume:
                feedback.added.append((match, event))
            return feedback

        moves = is_rising(event) if self._rising else is_falling(event)
        if not moves:
            return feedback
        match = self._match
        match.bind(event, consumed=self._consume, delta_after=match.delta - 1)
        if self._consume:
            feedback.added.append((match, event))
        if match.delta == 0:
            consumed = match.consumable if self._consume else ()
            feedback.completed.append(Completion(
                match=match,
                constituents=match.constituents,
                consumed=tuple(consumed),
                attributes={"direction": "rise" if self._rising else "fall"},
            ))
            self._match = None
            self._done = True
        return feedback

    def close(self) -> Feedback:
        feedback = Feedback()
        if not self._closed:
            if self._match is not None:
                feedback.abandoned.append(self._match)
                self._match = None
            self._closed = True
        return feedback


def leading_predicate(leading_symbols: Iterable[str]):
    """Window start condition: a rising or falling quote of a leader."""
    leaders = frozenset(leading_symbols)

    def predicate(event: Event) -> bool:
        if event.attributes.get("symbol") not in leaders:
            return False
        return is_rising(event) or is_falling(event)

    return predicate


def make_q1(q: int, window_size: int, leading_symbols: Iterable[str],
            consume: bool = True) -> Query:
    """Build Q1 with pattern size ``q`` and window size ``window_size``."""
    leaders = tuple(leading_symbols)
    consumption = ConsumptionPolicy.all() if consume else \
        ConsumptionPolicy.none()

    def factory(start_event: Event) -> Detector:
        return Q1Detector(anchor=start_event, q=q, consume=consume)

    return Query(
        name=f"Q1(q={q},ws={window_size})",
        window=WindowSpec.count_on(window_size, leading_predicate(leaders)),
        detector_factory=factory,
        delta_max=q,
        selection=SelectionPolicy.FIRST,
        consumption=consumption,
        description=("first q same-direction quotes within ws events of a "
                     "leading-symbol move; CONSUME all"),
    )
