"""Query Q2 (Fig. 9): price-band oscillation (Balkesen & Tatbul, Query 9).

``PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)`` — the close price crosses
below the lower limit (A), passes through the band (B+), exceeds the upper
limit (C), and oscillates like that three full times, ending below (M).
Extended by the paper with ``WITHIN ws events FROM every s events`` and
``CONSUME (<all>)``.

The average pattern length is controlled by the band ``(lower, upper)``:
a wide band makes between-events (the Kleene stages) dwell longer,
lowering the chance a window can host the full oscillation — that is how
the evaluation sweeps the completion probability without a direct pattern
size knob.  "A matching event might or might not influence the pattern
completion: the Kleene+ implies that many events can match while the
pattern completion does not progress."
"""

from __future__ import annotations

from typing import Optional

from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.query import Query
from repro.queries.udf import UDFMatch
from repro.windows.specs import WindowSpec

# stage classes: even stages are mandatory extremes, odd stages are
# Kleene "between" stages.  0=below, 1=between, 2=above.
_EXTREMES = (0, 2, 0, 2, 0, 2, 0)  # A C E G I K M
_N_STAGES = 13


class Q2Detector(Detector):
    """UDF state machine for one Q2 window."""

    def __init__(self, lower: float, upper: float, consume: bool) -> None:
        self._lower = lower
        self._upper = upper
        self._consume = consume
        self._match: Optional[UDFMatch] = None
        self._stage = 0          # 0..12; even=extreme, odd=Kleene between
        self._kleene_count = 0   # events bound in the current Kleene stage
        self._done = False
        self._closed = False

    @property
    def delta_max(self) -> int:
        return _N_STAGES

    @property
    def done(self) -> bool:
        return self._done or self._closed

    def _classify(self, event: Event) -> Optional[int]:
        close = event.attributes["closePrice"]
        if close < self._lower:
            return 0
        if close > self._upper:
            return 2
        if self._lower < close < self._upper:
            return 1
        return None  # exactly on a limit matches no stage

    def _delta_at(self, stage: int, kleene_count: int) -> int:
        """Mandatory events still required from (stage, kleene progress)."""
        remaining = _N_STAGES - stage
        if stage % 2 == 1 and kleene_count > 0:
            remaining -= 1  # current Kleene already satisfied
        return remaining

    def process(self, event: Event) -> Feedback:
        feedback = Feedback()
        if self.done:
            return feedback
        cls = self._classify(event)
        if cls is None:
            return feedback

        if self._match is None:
            if cls == 0:  # A: below the lower limit
                match = UDFMatch(match_id=0, delta=self._delta_at(1, 0))
                match.bind(event, consumed=self._consume)
                self._match = match
                self._stage = 1
                self._kleene_count = 0
                feedback.created.append(match)
                if self._consume:
                    feedback.added.append((match, event))
            return feedback

        match = self._match
        if self._stage % 2 == 1:  # in a Kleene "between" stage
            next_extreme = _EXTREMES[(self._stage + 1) // 2]
            if self._kleene_count > 0 and cls == next_extreme:
                self._stage += 1  # progress beats absorption
                self._bind(match, event, feedback)
                self._after_extreme(match, feedback)
            elif cls == 1:
                self._kleene_count += 1
                self._bind(match, event, feedback)
        else:  # awaiting a mandatory extreme (only reachable transiently)
            if cls == _EXTREMES[self._stage // 2]:
                self._bind(match, event, feedback)
                self._after_extreme(match, feedback)
        return feedback

    def _bind(self, match: UDFMatch, event: Event,
              feedback: Feedback) -> None:
        match.bind(event, consumed=self._consume,
                   delta_after=self._delta_at(self._stage,
                                              self._kleene_count))
        if self._consume:
            feedback.added.append((match, event))

    def _after_extreme(self, match: UDFMatch, feedback: Feedback) -> None:
        if self._stage >= _N_STAGES - 1:
            consumed = match.consumable if self._consume else ()
            match.delta = 0
            feedback.completed.append(Completion(
                match=match,
                constituents=match.constituents,
                consumed=tuple(consumed),
                attributes={"oscillations": 3},
            ))
            self._match = None
            self._done = True
        else:
            self._stage += 1  # enter the next Kleene stage
            self._kleene_count = 0
            match.delta = self._delta_at(self._stage, 0)

    def close(self) -> Feedback:
        feedback = Feedback()
        if not self._closed:
            if self._match is not None:
                feedback.abandoned.append(self._match)
                self._match = None
            self._closed = True
        return feedback


def make_q2(lower: float, upper: float, window_size: int, slide: int,
            consume: bool = True) -> Query:
    """Build Q2 with price band ``(lower, upper)``."""
    consumption = ConsumptionPolicy.all() if consume else \
        ConsumptionPolicy.none()

    def factory(start_event: Event) -> Detector:
        return Q2Detector(lower=lower, upper=upper, consume=consume)

    return Query(
        name=f"Q2({lower},{upper},ws={window_size},s={slide})",
        window=WindowSpec.count_sliding(window_size, slide),
        detector_factory=factory,
        delta_max=_N_STAGES,
        selection=SelectionPolicy.FIRST,
        consumption=consumption,
        description=("three full price oscillations across a band; "
                     "CONSUME all"),
    )
