"""The running example QE (Sec. 2.1, Figs. 1a/1b).

Tesla query::

    define Influence(Factor)
    from   B() and A() within 1min from B     -- paper writes "from B";
    where  Factor = B:change / A:change       -- the window anchor is A

A window opens on each ``A`` event (scope: 1 minute).  The selection
policy is "first A, each B": the window's A is correlated with *every* B
inside the window.  Under consumption policy "selected B" (Fig. 1b) each
correlated B is consumed; under "none" (Fig. 1a) nothing is.

On the example stream A1 A2 B1 B2 B3 this yields the paper's outputs:
five complex events without consumption, three with "selected B".
"""

from __future__ import annotations


from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.query import Query
from repro.queries.udf import UDFMatch
from repro.windows.specs import WindowSpec


class QEDetector(Detector):
    """Anchor A correlated with each B in the window."""

    def __init__(self, anchor: Event,
                 consumption: ConsumptionPolicy) -> None:
        self._anchor = anchor
        self._policy = consumption
        self._anchor_seen = False
        self._anchor_alive = False
        self._next_id = 0
        self._closed = False

    @property
    def delta_max(self) -> int:
        return 1

    @property
    def done(self) -> bool:
        if self._closed:
            return True
        # once the anchor was processed but could not start correlations
        # (wrong type or consumed), nothing can ever match
        return self._anchor_seen and not self._anchor_alive

    def process(self, event: Event) -> Feedback:
        feedback = Feedback()
        if self._closed:
            return feedback
        if not self._anchor_seen:
            if event.seq == self._anchor.seq:
                self._anchor_seen = True
                self._anchor_alive = event.etype == "A"
            return feedback
        if not self._anchor_alive or event.etype != "B":
            return feedback

        # every B instantly completes a (window-A, B) correlation
        match = UDFMatch(match_id=self._next_id, delta=0)
        self._next_id += 1
        match.bind(self._anchor, consumed=self._policy.consumes("A"))
        match.bind(event, consumed=self._policy.consumes("B"))
        feedback.created.append(match)
        a_change = self._anchor.attributes.get("change")
        b_change = event.attributes.get("change")
        factor = None
        if a_change not in (None, 0) and b_change is not None:
            factor = b_change / a_change
        feedback.completed.append(Completion(
            match=match,
            constituents=(self._anchor, event),
            consumed=tuple(match.consumable),
            attributes={"Factor": factor},
        ))
        return feedback

    def close(self) -> Feedback:
        self._closed = True
        return Feedback()


def make_qe(consumption: ConsumptionPolicy | str = "selected-b",
            window_seconds: float = 60.0) -> Query:
    """Build QE; ``consumption`` is ``"none"``, ``"selected-b"``, ``"all"``
    or any explicit :class:`ConsumptionPolicy`."""
    if isinstance(consumption, str):
        presets = {
            "none": ConsumptionPolicy.none(),
            "selected-b": ConsumptionPolicy.selected("B"),
            "all": ConsumptionPolicy.all(),
        }
        try:
            consumption = presets[consumption]
        except KeyError:
            raise ValueError(f"unknown QE consumption preset "
                             f"{consumption!r}; expected {sorted(presets)}"
                             ) from None

    def factory(start_event: Event) -> Detector:
        return QEDetector(anchor=start_event, consumption=consumption)

    return Query(
        name=f"QE(cp={consumption.describe()})",
        window=WindowSpec.time_on(window_seconds,
                                  lambda event: event.etype == "A"),
        detector_factory=factory,
        delta_max=1,
        selection=SelectionPolicy.EACH,
        consumption=consumption,
        description="Influence(Factor): each B within 1 min of an A",
    )
