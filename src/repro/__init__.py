"""repro — a reproduction of SPECTRE (Mayer et al., Middleware 2017).

SPECTRE enables window-based *data-parallel* complex event processing in
the presence of **consumption policies** (events participate in at most
one pattern instance) by speculating on the outcome of partial matches
and scheduling the k most probable window versions onto k operator
instances.

Quickstart
----------
Batch — the fluent pipeline facade runs any engine over a finite
stream:

>>> from repro import SpectreConfig, SpectreEngine, make_qe, pipeline
>>> from repro.events import make_event
>>> stream = [make_event(0, "A", 0.0, change=2.0),
...           make_event(1, "A", 10.0, change=4.0),
...           make_event(2, "B", 20.0, change=6.0),
...           make_event(3, "B", 30.0, change=8.0),
...           make_event(4, "B", 70.0, change=2.0)]
>>> query = make_qe("selected-b")
>>> sequential = pipeline(query).engine("sequential").run(stream)
>>> speculative = pipeline(query).engine("spectre", k=4).run(stream)
>>> sequential.identities() == speculative.identities()
True

Streaming — every engine opens a push-based session that emits each
match on the event that validated it (``Engine.open() -> Session``):

>>> session = SpectreEngine(query, SpectreConfig(k=4)).open()
>>> matches = []
>>> for event in stream:
...     matches.extend(session.push(event))
>>> matches.extend(session.close())   # flushes trailing windows
>>> [ce.identity() for ce in matches] == sequential.identities()
True

Serving — a :class:`StreamHub` multiplexes many concurrent queries
over one shared ingestion pass, with dynamic attach/detach:

>>> from repro import StreamHub
>>> hub = StreamHub()
>>> attachment = hub.attach(query, engine="spectre", k=2)
>>> for event in stream:
...     _ = hub.push(event)           # one pass, every attachment
>>> _ = hub.close()
>>> [ce.identity() for ce in attachment] == sequential.identities()
True
"""

from repro.events import ComplexEvent, Event, EventStream, make_event
from repro.graph import Operator, OperatorGraph
from repro.middleware import (
    MetricsMiddleware,
    MetricsRegistry,
    Middleware,
    MiddlewareContext,
    MiddlewareStack,
    RateLimitExceeded,
    RateLimitMiddleware,
    TraceMiddleware,
    ValidationError,
    ValidationMiddleware,
)
from repro.hub import (
    AsyncStreamHub,
    Attachment,
    BackpressureError,
    HubClosedError,
    HubStats,
    StreamHub,
)
from repro.patterns import (
    Atom,
    ConsumptionPolicy,
    KleenePlus,
    Negation,
    Query,
    SelectionPolicy,
    Sequence,
    SetPattern,
    make_query,
    parse_query,
)
from repro.queries import make_q1, make_q2, make_q3, make_qe
from repro.runtime import (
    FifoScheduler,
    Forest,
    InstancePool,
    OpLog,
    RoundRobinScheduler,
    Scheduler,
    ShardedSpectreEngine,
    ShardPlan,
    TopKProbabilityScheduler,
    make_scheduler,
    plan_shards,
    run_spectre_sharded,
)
from repro.sequential import SequentialEngine, run_sequential
from repro.streaming import (
    Engine,
    Pipeline,
    PipelineSession,
    Session,
    SessionClosedError,
    SessionStateError,
    SinkError,
    build_engine,
    pipeline,
)
from repro.spectre import (
    ApproximateSpectreEngine,
    ElasticityPolicy,
    ElasticSpectreEngine,
    MarkovPredictor,
    SpectreConfig,
    SpectreEngine,
    SpectreResult,
    ThreadedSpectreEngine,
    run_spectre,
    run_spectre_approximate,
    run_spectre_elastic,
    run_spectre_threaded,
)
from repro.trex import TRexEngine, run_trex
from repro.windows import WindowSpec

__version__ = "1.2.0"

__all__ = [
    "Engine",
    "Session",
    "SessionClosedError",
    "SessionStateError",
    "SinkError",
    "Pipeline",
    "PipelineSession",
    "pipeline",
    "build_engine",
    "Middleware",
    "MiddlewareContext",
    "MiddlewareStack",
    "MetricsMiddleware",
    "MetricsRegistry",
    "RateLimitMiddleware",
    "RateLimitExceeded",
    "ValidationMiddleware",
    "ValidationError",
    "TraceMiddleware",
    "StreamHub",
    "AsyncStreamHub",
    "Attachment",
    "HubStats",
    "HubClosedError",
    "BackpressureError",
    "Event",
    "ComplexEvent",
    "EventStream",
    "make_event",
    "Atom",
    "Sequence",
    "KleenePlus",
    "SetPattern",
    "Negation",
    "Query",
    "make_query",
    "parse_query",
    "SelectionPolicy",
    "ConsumptionPolicy",
    "WindowSpec",
    "SequentialEngine",
    "run_sequential",
    "SpectreEngine",
    "SpectreConfig",
    "SpectreResult",
    "MarkovPredictor",
    "run_spectre",
    "ThreadedSpectreEngine",
    "run_spectre_threaded",
    "ApproximateSpectreEngine",
    "run_spectre_approximate",
    "ElasticSpectreEngine",
    "ElasticityPolicy",
    "run_spectre_elastic",
    "Forest",
    "OpLog",
    "InstancePool",
    "ShardPlan",
    "ShardedSpectreEngine",
    "plan_shards",
    "run_spectre_sharded",
    "Scheduler",
    "TopKProbabilityScheduler",
    "FifoScheduler",
    "RoundRobinScheduler",
    "make_scheduler",
    "TRexEngine",
    "run_trex",
    "make_q1",
    "make_q2",
    "make_q3",
    "make_qe",
    "Operator",
    "OperatorGraph",
    "__version__",
]
