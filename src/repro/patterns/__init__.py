"""Pattern language: AST, predicates, policies, queries and the parser."""

from repro.patterns.ast import (
    Atom,
    KleenePlus,
    Negation,
    PatternElement,
    Sequence,
    SetPattern,
    atoms_of,
    sequence,
)
from repro.patterns.parser import QueryParseError, parse_query
from repro.patterns.policies import (
    ConsumptionPolicy,
    SelectionPolicy,
    parameter_context,
)
from repro.patterns.query import Query, make_query

__all__ = [
    "Atom",
    "KleenePlus",
    "Negation",
    "SetPattern",
    "Sequence",
    "PatternElement",
    "sequence",
    "atoms_of",
    "SelectionPolicy",
    "ConsumptionPolicy",
    "parameter_context",
    "Query",
    "make_query",
    "parse_query",
    "QueryParseError",
]
