"""Payload predicates for pattern atoms.

A predicate decides whether an event may take a given position in a
pattern, possibly looking at events already bound to earlier positions
(cross-event constraints such as ``A.x > B.x``).

Predicates are plain callables ``(event, bindings) -> bool`` where
``bindings`` maps atom names to the event (or, for Kleene atoms, the list
of events) already bound.  The combinators below exist so that queries read
declaratively; hand-written lambdas work just as well.

Two properties distinguish combinator-built predicates from raw lambdas:

* **Missing attributes are a clean non-match.**  A comparison whose
  event lacks the referenced attribute — or carries it with a ``None``
  value (a JSON null) — evaluates to ``False`` instead of raising
  ``KeyError``/``TypeError``; one malformed event must not kill a
  long-running session.  (Consequence for :func:`negate`: the negation
  of a failed comparison *matches* — SQL-NULL-style semantics.)
* **They are compilable.**  Each combinator attaches a declarative
  ``_kernel_spec`` to the closure it returns, which is what lets
  :mod:`repro.matching.kernel` fuse an atom's whole predicate tree into
  one generated code object.  Hand-written lambdas still work — they
  simply stay interpreted.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping

from repro.events.event import Event

Bindings = Mapping[str, Any]
Predicate = Callable[[Event, Bindings], bool]

#: Sentinel for "the event has no usable value for this attribute".
#: ``None`` attribute values (JSON nulls) are folded into it — a null
#: participates in no comparison, SQL-style.
MISSING = object()


def _operand(attributes: Mapping[str, Any], attr: str) -> Any:
    """Attribute value for comparison purposes; absent or None → MISSING."""
    value = attributes.get(attr)
    return MISSING if value is None else value

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def true_predicate(event: Event, bindings: Bindings) -> bool:
    """The always-true predicate (atom constrained by type only)."""
    return True


true_predicate._kernel_spec = ("const", True)  # type: ignore[attr-defined]


def attr_compare(attr: str, op: str, value: Any) -> Predicate:
    """``event[attr] <op> value`` — e.g. ``attr_compare("close", ">", 50)``.

    A missing attribute is a non-match (see module docstring).
    """
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        own = _operand(event.attributes, attr)
        return own is not MISSING and compare(own, value)

    predicate._kernel_spec = (  # type: ignore[attr-defined]
        "cmp", ("attr", attr), op, ("lit", value))
    return predicate


def attr_between(attr: str, low: Any, high: Any) -> Predicate:
    """``low < event[attr] < high`` (strict, like the paper's Q2 bands)."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        own = _operand(event.attributes, attr)
        return own is not MISSING and low < own < high

    predicate._kernel_spec = (  # type: ignore[attr-defined]
        "between", attr, low, high)
    return predicate


def self_compare(left_attr: str, op: str, right_attr: str) -> Predicate:
    """Compare two attributes of the *same* event.

    The paper's Q1 condition ``RE.closePrice > RE.openPrice`` (a rising
    quote) is ``self_compare("closePrice", ">", "openPrice")``.
    """
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        attributes = event.attributes
        left = _operand(attributes, left_attr)
        if left is MISSING:
            return False
        right = _operand(attributes, right_attr)
        return right is not MISSING and compare(left, right)

    predicate._kernel_spec = (  # type: ignore[attr-defined]
        "cmp", ("attr", left_attr), op, ("attr", right_attr))
    return predicate


def cross_compare(attr: str, op: str, other_name: str,
                  other_attr: str) -> Predicate:
    """Compare against an attribute of an earlier-bound atom.

    ``cross_compare("x", ">", "A", "x")`` expresses ``THIS.x > A.x``.
    If the referenced atom is a Kleene binding (a list), its most recent
    event is used.  An unbound reference or missing attribute on either
    side is a non-match.
    """
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        own = _operand(event.attributes, attr)
        if own is MISSING:
            return False
        bound = bindings.get(other_name)
        if bound is None:
            return False
        other_event = bound[-1] if isinstance(bound, list) else bound
        other = _operand(other_event.attributes, other_attr)
        return other is not MISSING and compare(own, other)

    predicate._kernel_spec = (  # type: ignore[attr-defined]
        "cmp", ("attr", attr), op, ("bound", other_name, other_attr))
    return predicate


def _child_specs(predicates: tuple[Predicate, ...]) -> tuple | None:
    """Collect child specs; None if any child is an opaque lambda."""
    specs = tuple(getattr(p, "_kernel_spec", None) for p in predicates)
    if any(spec is None for spec in specs):
        return None
    return specs


def all_of(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return all(p(event, bindings) for p in predicates)

    specs = _child_specs(predicates)
    if specs is not None:
        predicate._kernel_spec = (  # type: ignore[attr-defined]
            "and", specs) if specs else ("const", True)
    return predicate


def any_of(*predicates: Predicate) -> Predicate:
    """Disjunction of predicates."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return any(p(event, bindings) for p in predicates)

    specs = _child_specs(predicates)
    if specs is not None:
        predicate._kernel_spec = (  # type: ignore[attr-defined]
            "or", specs) if specs else ("const", False)
    return predicate


def negate(inner: Predicate) -> Predicate:
    """Logical negation of a predicate.

    Note: combined with the missing-attribute rule, negating a
    comparison on an absent attribute *matches* (inner is False).
    """

    def predicate(event: Event, bindings: Bindings) -> bool:
        return not inner(event, bindings)

    inner_spec = getattr(inner, "_kernel_spec", None)
    if inner_spec is not None:
        predicate._kernel_spec = ("not", inner_spec)  # type: ignore[attr-defined]
    return predicate
