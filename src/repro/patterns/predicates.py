"""Payload predicates for pattern atoms.

A predicate decides whether an event may take a given position in a
pattern, possibly looking at events already bound to earlier positions
(cross-event constraints such as ``A.x > B.x``).

Predicates are plain callables ``(event, bindings) -> bool`` where
``bindings`` maps atom names to the event (or, for Kleene atoms, the list
of events) already bound.  The combinators below exist so that queries read
declaratively; hand-written lambdas work just as well.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping

from repro.events.event import Event

Bindings = Mapping[str, Any]
Predicate = Callable[[Event, Bindings], bool]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def true_predicate(event: Event, bindings: Bindings) -> bool:
    """The always-true predicate (atom constrained by type only)."""
    return True


def attr_compare(attr: str, op: str, value: Any) -> Predicate:
    """``event[attr] <op> value`` — e.g. ``attr_compare("close", ">", 50)``."""
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        return compare(event.attributes[attr], value)

    return predicate


def attr_between(attr: str, low: Any, high: Any) -> Predicate:
    """``low < event[attr] < high`` (strict, like the paper's Q2 bands)."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return low < event.attributes[attr] < high

    return predicate


def self_compare(left_attr: str, op: str, right_attr: str) -> Predicate:
    """Compare two attributes of the *same* event.

    The paper's Q1 condition ``RE.closePrice > RE.openPrice`` (a rising
    quote) is ``self_compare("closePrice", ">", "openPrice")``.
    """
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        return compare(event.attributes[left_attr], event.attributes[right_attr])

    return predicate


def cross_compare(attr: str, op: str, other_name: str,
                  other_attr: str) -> Predicate:
    """Compare against an attribute of an earlier-bound atom.

    ``cross_compare("x", ">", "A", "x")`` expresses ``THIS.x > A.x``.
    If the referenced atom is a Kleene binding (a list), its most recent
    event is used.
    """
    compare = _OPS[op]

    def predicate(event: Event, bindings: Bindings) -> bool:
        bound = bindings.get(other_name)
        if bound is None:
            return False
        other_event = bound[-1] if isinstance(bound, list) else bound
        return compare(event.attributes[attr], other_event.attributes[other_attr])

    return predicate


def all_of(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return all(p(event, bindings) for p in predicates)

    return predicate


def any_of(*predicates: Predicate) -> Predicate:
    """Disjunction of predicates."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return any(p(event, bindings) for p in predicates)

    return predicate


def negate(inner: Predicate) -> Predicate:
    """Logical negation of a predicate."""

    def predicate(event: Event, bindings: Bindings) -> bool:
        return not inner(event, bindings)

    return predicate
