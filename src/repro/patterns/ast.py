"""Pattern abstract syntax tree.

The AST covers the constructs the paper's queries (and its cited
specification languages — Snoop, Amit, Tesla, SASE) use:

* :class:`Atom` — a single event, constrained by type and predicate.
* :class:`Sequence` — ordered succession of elements.
* :class:`KleenePlus` — one or more occurrences of an atom (``B+`` in Q2).
* :class:`SetPattern` — an unordered conjunction (``SET(X1 ... Xn)`` in Q3).
* :class:`Negation` — a forbidden event between two sequence positions;
  its occurrence *abandons* the partial match (Sec. 3.1, abandon case 2).

Matching semantics are *skip-till-next-match* (as in SASE): events that do
not advance a partial match are skipped, they neither extend nor kill it —
except negations, which kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.patterns.predicates import Predicate, true_predicate


@dataclass(frozen=True)
class PatternElement:
    """Base class for AST nodes."""

    def mandatory_count(self) -> int:
        """Minimum number of events needed to satisfy this element.

        This is the element's contribution to δ, the "inverse degree of
        completion" that drives the Markov prediction model (Sec. 3.2.1).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(PatternElement):
    """A single event position.

    Parameters
    ----------
    name:
        Binding name (``A``, ``RE1``, ...). Must be unique in a pattern.
    etype:
        Required event type, or ``None`` to accept any type.
    predicate:
        Payload predicate, see :mod:`repro.patterns.predicates`.
    """

    name: str
    etype: Optional[str] = None
    predicate: Predicate = true_predicate

    def matches(self, event, bindings) -> bool:
        """Type check plus predicate check against ``event``."""
        if self.etype is not None and event.etype != self.etype:
            return False
        return self.predicate(event, bindings)

    def mandatory_count(self) -> int:
        return 1


@dataclass(frozen=True)
class KleenePlus(PatternElement):
    """One-or-more repetitions of ``atom`` (binds a list of events).

    Only the *first* occurrence is mandatory; further matching events are
    absorbed without advancing completion (exactly the behaviour the paper
    highlights for Q2: "the Kleene+ implies that many events can match
    while the pattern completion does not progress").
    """

    atom: Atom

    @property
    def name(self) -> str:
        return self.atom.name

    def mandatory_count(self) -> int:
        return 1


@dataclass(frozen=True)
class Negation(PatternElement):
    """A forbidden event.

    Placed between two sequence positions, a matching event abandons the
    partial match once the preceding position is bound (e.g. "no C between
    A and B").
    """

    atom: Atom

    @property
    def name(self) -> str:
        return self.atom.name

    def mandatory_count(self) -> int:
        return 0


@dataclass(frozen=True)
class SetPattern(PatternElement):
    """Unordered conjunction: each member atom must match a distinct event.

    Used by Q3's ``SET(X1 ... Xn)``: *n* specific stock symbols following
    symbol A, "the ordering of those n symbols is not important".
    """

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        names = [atom.name for atom in self.atoms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate atom names in SetPattern: {names}")

    def mandatory_count(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class Sequence(PatternElement):
    """Ordered succession of pattern elements."""

    elements: tuple[PatternElement, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = list(self.names())
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate atom names in Sequence: {names}")
        if not self.elements:
            raise ValueError("a Sequence needs at least one element")
        if isinstance(self.elements[0], Negation):
            raise ValueError("a Sequence cannot start with a Negation")

    def names(self):
        for element in self.elements:
            if isinstance(element, SetPattern):
                for atom in element.atoms:
                    yield atom.name
            else:
                yield element.name  # type: ignore[attr-defined]

    def mandatory_count(self) -> int:
        return sum(element.mandatory_count() for element in self.elements)


def sequence(*elements: PatternElement) -> Sequence:
    """Build a :class:`Sequence` from varargs (readability helper)."""
    return Sequence(tuple(elements))


def atoms_of(pattern: PatternElement) -> list[Atom]:
    """All atoms of ``pattern`` in declaration order (negations included)."""
    if isinstance(pattern, Atom):
        return [pattern]
    if isinstance(pattern, (KleenePlus, Negation)):
        return [pattern.atom]
    if isinstance(pattern, SetPattern):
        return list(pattern.atoms)
    if isinstance(pattern, Sequence):
        result: list[Atom] = []
        for element in pattern.elements:
            result.extend(atoms_of(element))
        return result
    raise TypeError(f"unknown pattern element: {pattern!r}")
