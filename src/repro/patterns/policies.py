"""Selection and consumption policies.

Event specification languages separate *which* events participate in a
match (**selection policy**) from *what happens to them* afterwards
(**consumption policy**) — Sec. 2.1 and Sec. 5 of the paper, following
Snoop, Zimmer & Unland, Amit and Tesla.

Selection policy
----------------
Controls how many pattern instances a window may produce and which
candidate event fills a position when several could:

* ``FIRST`` — the first match per window only (the paper's evaluation
  queries Q1–Q3: "the first q rising quotes ...").
* ``EACH`` — every completion spawns continued detection; after a match
  completes, detection restarts so every combination allowed by the
  consumption policy is reported (the ``QE`` example: "the first A ...
  is correlated with every B").
* ``LAST`` — like FIRST, but a position prefers the most recent candidate
  (kept for completeness of the policy space; exercised in unit tests).

Consumption policy
------------------
Declares which constituents of a completed match are *consumed* — removed
from all further pattern detection in every window (Sec. 2.1):

* ``ConsumptionPolicy.none()`` — nothing consumed (Fig. 1a).
* ``ConsumptionPolicy.all()`` — every constituent consumed (Q1, Q2, Q3:
  ``CONSUME (<all positions>)``).
* ``ConsumptionPolicy.selected("B")`` — only named positions consumed
  (Fig. 1b, "CP: selected B").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.events.event import Event


class SelectionPolicy(enum.Enum):
    """How candidate events are selected into pattern instances."""

    FIRST = "first"
    EACH = "each"
    LAST = "last"


_ALL = "__all__"


@dataclass(frozen=True)
class ConsumptionPolicy:
    """Which match positions get consumed when a match completes.

    ``positions`` is a frozenset of atom names, or the sentinel ``_ALL``.
    Use the factory methods; the constructor is an implementation detail.
    """

    positions: frozenset[str]

    @classmethod
    def none(cls) -> "ConsumptionPolicy":
        """Consume nothing (no inter-window dependencies arise)."""
        return cls(frozenset())

    @classmethod
    def all(cls) -> "ConsumptionPolicy":
        """Consume every constituent of the match."""
        return cls(frozenset({_ALL}))

    @classmethod
    def selected(cls, *names: str) -> "ConsumptionPolicy":
        """Consume only the named positions (e.g. ``selected("B")``)."""
        if not names:
            raise ValueError("selected() needs at least one position name")
        return cls(frozenset(names))

    @property
    def is_none(self) -> bool:
        return not self.positions

    @property
    def is_all(self) -> bool:
        return _ALL in self.positions

    def consumes(self, position: str) -> bool:
        """Does this policy consume events bound at ``position``?"""
        return self.is_all or position in self.positions

    def consumed_events(
        self, match_bindings: Mapping[str, Event | Sequence[Event]]
    ) -> list[Event]:
        """The events to consume from a completed match.

        ``match_bindings`` maps position names to the bound event (or list
        of events for Kleene positions).
        """
        consumed: list[Event] = []
        for name, bound in match_bindings.items():
            if not self.consumes(name):
                continue
            if isinstance(bound, Event):
                consumed.append(bound)
            else:
                consumed.extend(bound)
        return consumed

    def describe(self) -> str:
        if self.is_none:
            return "none"
        if self.is_all:
            return "all"
        return "selected " + ",".join(sorted(self.positions))


def parameter_context(name: str) -> tuple[SelectionPolicy, ConsumptionPolicy]:
    """Snoop-style *parameter contexts* — predefined policy combinations.

    Snoop (Chakravarthy & Mishra) bundles selection+consumption into four
    named contexts; we expose the two that map cleanly onto this engine's
    policy space (the other two differ only in initiator-selection details
    that our window model already fixes):

    * ``"recent"``  → prefer latest candidates, consume constituents.
    * ``"chronicle"`` → prefer earliest candidates, consume constituents.
    * ``"continuous"`` → earliest candidates, consume nothing.
    * ``"cumulative"`` → every candidate participates, consume everything.
    """
    contexts = {
        "recent": (SelectionPolicy.LAST, ConsumptionPolicy.all()),
        "chronicle": (SelectionPolicy.FIRST, ConsumptionPolicy.all()),
        "continuous": (SelectionPolicy.FIRST, ConsumptionPolicy.none()),
        "cumulative": (SelectionPolicy.EACH, ConsumptionPolicy.all()),
    }
    try:
        return contexts[name]
    except KeyError:
        raise ValueError(
            f"unknown parameter context {name!r}; expected one of "
            f"{sorted(contexts)}"
        ) from None
