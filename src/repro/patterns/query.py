"""Query objects: pattern + window + policies, bound to a detector factory.

A :class:`Query` is everything an engine needs to run one continuous
pattern-detection task:

* the :class:`~repro.windows.specs.WindowSpec` (``WITHIN ... FROM ...``),
* a detector factory producing a fresh detector per window version — this
  is the paper's "UDF inside SPECTRE" hook; the default factory builds a
  generic :class:`~repro.matching.nfa.NFADetector` from the pattern AST,
* the selection and consumption policies,
* ``delta_max``, the largest inverse-completion-degree δ a partial match
  can have (the Markov model's state-space size),
* for AST-driven queries, the compiled :class:`~repro.matching.kernel.
  QueryPlan` — fused predicate kernels, table-dispatch kind codes and
  the relevant-type prefilter set — built **once** per query and shared
  by every detector instance and every engine (UDF queries carry no
  plan; their detectors are already hand-specialized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.events.event import Event
from repro.matching.base import Detector
from repro.matching.kernel import QueryPlan, build_plan
from repro.matching.nfa import DeriveFn, NFADetector
from repro.patterns.ast import PatternElement
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.windows.specs import OnPredicate, WindowSpec

DetectorFactory = Callable[[Event], Detector]


@dataclass(frozen=True)
class NFAOptions:
    """Detector-construction facts :func:`make_query` captured in its
    factory closure, re-exposed so the multi-query optimizer can decide
    shareability without calling the factory.  UDF queries (hand-written
    detectors) carry no options and are never shared."""

    max_matches: Optional[int] = 1
    anchored: bool = False
    has_derive: bool = False


@dataclass(frozen=True)
class Query:
    """A complete continuous query.

    Use :func:`make_query` for the common AST-driven case; construct
    directly when supplying a hand-written UDF detector (as the paper's
    evaluation queries do — see :mod:`repro.queries`).
    """

    name: str
    window: WindowSpec
    detector_factory: DetectorFactory
    delta_max: int
    selection: SelectionPolicy = SelectionPolicy.FIRST
    consumption: ConsumptionPolicy = field(
        default_factory=ConsumptionPolicy.none)
    description: str = ""
    # AST-driven queries carry their source pattern and compiled plan;
    # UDF queries leave both None (nothing to compile).
    pattern: Optional[PatternElement] = None
    plan: Optional[QueryPlan] = None
    nfa_options: Optional[NFAOptions] = None
    # provenance: the MATCH-RECOGNIZE source text and parameter
    # bindings this query was parsed from (stamped by ``parse_query``;
    # None for hand-constructed queries).  The durability layer
    # re-attaches durable queries from these after a restart; params
    # are stored as sorted (key, value) pairs to keep Query hashable.
    text: Optional[str] = None
    params: Optional[tuple[tuple[str, Any], ...]] = None

    @property
    def params_map(self) -> dict:
        """The parse-time parameter bindings as a dict (empty when the
        query was not parsed from text or took no parameters)."""
        return dict(self.params or ())

    def new_detector(self, start_event: Event) -> Detector:
        """Fresh detector for a window starting at ``start_event``."""
        return self.detector_factory(start_event)

    @property
    def consumes(self) -> bool:
        """Does this query impose inter-window dependencies at all?"""
        return not self.consumption.is_none


def make_query(name: str, pattern: PatternElement, window: WindowSpec,
               selection: SelectionPolicy = SelectionPolicy.FIRST,
               consumption: ConsumptionPolicy | None = None,
               max_matches: Optional[int] = 1,
               anchored: bool = False,
               derive: Optional[DeriveFn] = None,
               description: str = "",
               compile: Optional[bool] = None) -> Query:
    """Build a query whose detector is the generic NFA automaton.

    ``anchored=True`` requires the window's start condition to be a
    predicate (``FROM <event>``) and forces the first pattern position to
    bind exactly the window-opening event.

    ``compile`` selects fused generated kernels + type prefiltering
    (default, also switchable off fleet-wide via ``REPRO_COMPILE=0``) or
    the interpreted predicate path (``compile=False``, the differential-
    testing escape hatch).  The plan is built here, once, and shared by
    every detector the query creates.
    """
    consumption = consumption or ConsumptionPolicy.none()
    if anchored and not isinstance(window.start, OnPredicate):
        raise ValueError("anchored queries need an OnPredicate window start")
    plan = build_plan(pattern, compiled=compile)

    def factory(start_event: Event) -> Detector:
        return NFADetector(
            pattern,
            selection=selection,
            consumption=consumption,
            max_matches=max_matches,
            anchor=start_event if anchored else None,
            derive=derive,
            plan=plan,
        )

    return Query(
        name=name,
        window=window,
        detector_factory=factory,
        delta_max=pattern.mandatory_count(),
        selection=selection,
        consumption=consumption,
        description=description,
        pattern=pattern,
        plan=plan,
        nfa_options=NFAOptions(max_matches=max_matches, anchored=anchored,
                               has_derive=derive is not None),
    )
