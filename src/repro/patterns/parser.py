"""Parser for the paper's extended MATCH-RECOGNIZE notation.

The paper (Fig. 9) writes queries in MATCH-RECOGNIZE syntax extended with
two Tesla-derived clauses: ``WITHIN ... FROM ...`` (window definition) and
``CONSUME ...`` (consumption policy).  This module parses that notation
into a runnable :class:`~repro.patterns.query.Query`:

.. code-block:: text

    PATTERN (A B+ C)
    DEFINE
        A AS (A.closePrice < lowerLimit),
        B AS (B.closePrice > lowerLimit AND B.closePrice < upperLimit),
        C AS (C.closePrice > upperLimit)
    WITHIN 8000 events FROM every 1000 events
    CONSUME (A B+ C)

Supported constructs
--------------------
* ``PATTERN ( ... )`` — symbols, ``sym+`` (Kleene), ``SET(s1 s2 ...)``
  (unordered conjunction), ``!sym`` (negation guard).
* ``DEFINE sym AS (<boolexpr>)`` — boolean combinations (``AND``,
  ``OR``, parenthesized grouping; ``AND`` binds tighter) of comparisons
  between ``sym.attr`` references, numeric/string literals, and free
  parameters supplied via the ``params`` argument.  Disjunctions are
  what make the Fig. 9 queries expressible — e.g. Q1's "moves in the
  same direction as the leading quote" is
  ``(RE.close > RE.open AND MLE.close > MLE.open) OR
  (RE.close < RE.open AND MLE.close < MLE.open)``.
* ``WITHIN n events | x seconds`` and
  ``FROM every s events | FROM sym`` (window opens on events satisfying
  ``sym``'s definition — e.g. Q1's ``FROM MLE``).
* ``CONSUME ALL | CONSUME ( sym ... )`` — omitted means consume nothing.

Symbols without a DEFINE entry match on event *type* equal to the symbol
name (Tesla's ``B()`` style); defined symbols match on their condition
regardless of type.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from repro.patterns.ast import (
    Atom,
    KleenePlus,
    Negation,
    PatternElement,
    Sequence,
    SetPattern,
)
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.predicates import (
    MISSING,
    Bindings,
    Predicate,
    true_predicate,
)
from repro.patterns.query import Query, make_query
from repro.windows.specs import WindowSpec


class QueryParseError(ValueError):
    """Raised on malformed query text."""


# `op` must try before `bang`, or `!=` would tokenize as `!` + `=`
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<plus>\+)"
    r"|(?P<op><=|>=|!=|==|<|>|=)|(?P<bang>!)"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*'|\"[^\"]*\")"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9.]*))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos:].strip() == "":
            break  # only trailing whitespace left
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:pos + 20]
            raise QueryParseError(f"cannot tokenize near {remainder!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


@dataclass
class _Comparison:
    """One ``lhs op rhs`` condition from a DEFINE clause.

    A missing operand — an unbound symbol reference or an event lacking
    the referenced attribute — makes the comparison *false* (a clean
    non-match, SQL-NULL style) rather than raising: one malformed event
    must not kill a long-running session.
    """

    lhs: tuple[str, str] | Any  # (symbol, attr) reference or literal
    op: str
    rhs: tuple[str, str] | Any

    def spec(self, own_symbol: str) -> tuple:
        """The declarative kernel spec (see repro.matching.kernel)."""
        def side(value: Any) -> tuple:
            if isinstance(value, tuple):
                symbol, attr = value
                if symbol == own_symbol:
                    return ("attr", attr)
                return ("bound", symbol, attr)
            return ("lit", value)

        op = "==" if self.op == "=" else self.op
        return ("cmp", side(self.lhs), op, side(self.rhs))

    def to_predicate(self, own_symbol: str) -> Predicate:
        import operator as _operator

        ops = {"<": _operator.lt, "<=": _operator.le, ">": _operator.gt,
               ">=": _operator.ge, "==": _operator.eq, "=": _operator.eq,
               "!=": _operator.ne}
        compare = ops[self.op]
        lhs, rhs = self.lhs, self.rhs

        def resolve(side: Any, event, bindings: Bindings) -> Any:
            # absent attributes and None values (JSON nulls) both
            # resolve to MISSING: the comparison is then a non-match
            if isinstance(side, tuple):
                symbol, attr = side
                if symbol == own_symbol:
                    value = event.attributes.get(attr)
                    return MISSING if value is None else value
                bound = bindings.get(symbol)
                if bound is None:
                    return MISSING
                bound_event = bound[-1] if isinstance(bound, list) else bound
                value = bound_event.attributes.get(attr)
                return MISSING if value is None else value
            return side

        def predicate(event, bindings: Bindings) -> bool:
            left = resolve(lhs, event, bindings)
            if left is MISSING or left is None:
                return False
            right = resolve(rhs, event, bindings)
            if right is MISSING or right is None:
                return False
            return compare(left, right)

        predicate._kernel_spec = self.spec(own_symbol)  # type: ignore
        return predicate


@dataclass
class _And:
    """Conjunction of condition nodes from a DEFINE clause."""

    parts: tuple

    def spec(self, own_symbol: str) -> tuple:
        return ("and", tuple(part.spec(own_symbol) for part in self.parts))

    def to_predicate(self, own_symbol: str) -> Predicate:
        predicates = tuple(part.to_predicate(own_symbol)
                           for part in self.parts)

        def predicate(event, bindings: Bindings) -> bool:
            return all(p(event, bindings) for p in predicates)

        predicate._kernel_spec = self.spec(own_symbol)  # type: ignore
        return predicate


@dataclass
class _Or:
    """Disjunction of condition nodes from a DEFINE clause."""

    parts: tuple

    def spec(self, own_symbol: str) -> tuple:
        return ("or", tuple(part.spec(own_symbol) for part in self.parts))

    def to_predicate(self, own_symbol: str) -> Predicate:
        predicates = tuple(part.to_predicate(own_symbol)
                           for part in self.parts)

        def predicate(event, bindings: Bindings) -> bool:
            return any(p(event, bindings) for p in predicates)

        predicate._kernel_spec = self.spec(own_symbol)  # type: ignore
        return predicate


class _Parser:
    """Single-pass recursive-descent parser over the token list."""

    def __init__(self, tokens: list[tuple[str, str]],
                 params: Mapping[str, Any]) -> None:
        self._tokens = tokens
        self._index = 0
        self._params = params

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self._index += 1
        return token

    def _expect_word(self, *expected: str) -> str:
        kind, value = self._next()
        if kind != "word" or (expected and value.upper() not in expected):
            raise QueryParseError(
                f"expected {' or '.join(expected) or 'a word'}, got {value!r}")
        return value

    def _expect(self, kind: str) -> str:
        actual_kind, value = self._next()
        if actual_kind != kind:
            raise QueryParseError(f"expected {kind}, got {value!r}")
        return value

    def _at_word(self, *words: str) -> bool:
        token = self._peek()
        return (token is not None and token[0] == "word"
                and token[1].upper() in words)

    # -- clause parsers ----------------------------------------------------

    def parse_pattern_clause(self) -> list[tuple[str, str]]:
        """Return [(kind, symbol)] with kind in atom/kleene/set-open/... ."""
        self._expect_word("PATTERN")
        self._expect("lparen")
        items: list[tuple[str, Any]] = []
        while True:
            token = self._peek()
            if token is None:
                raise QueryParseError("unterminated PATTERN clause")
            kind, value = token
            if kind == "rparen":
                self._next()
                break
            if kind == "bang":
                self._next()
                symbol = self._expect("word")
                items.append(("negation", symbol))
                continue
            if kind == "word" and value.upper() == "SET":
                self._next()
                self._expect("lparen")
                members: list[str] = []
                while not (self._peek() or ("", ""))[0] == "rparen":
                    members.append(self._expect("word"))
                self._expect("rparen")
                items.append(("set", members))
                continue
            if kind == "word":
                self._next()
                if (self._peek() or ("", ""))[0] == "plus":
                    self._next()
                    items.append(("kleene", value))
                else:
                    items.append(("atom", value))
                continue
            raise QueryParseError(f"unexpected token {value!r} in PATTERN")
        if not items:
            raise QueryParseError("empty PATTERN clause")
        return items

    def parse_define_clause(self) -> dict:
        definitions: dict = {}
        if not self._at_word("DEFINE"):
            return definitions
        self._next()
        while True:
            symbol = self._expect("word")
            self._expect_word("AS")
            self._expect("lparen")
            definitions[symbol] = self._parse_condition()
            self._expect("rparen")
            if (self._peek() or ("", ""))[0] == "comma":
                self._next()
                continue
            break
        return definitions

    # condition grammar: OR of ANDs of (comparison | parenthesized
    # condition) — AND binds tighter, parentheses override
    def _parse_condition(self):
        parts = [self._parse_conjunction()]
        while self._at_word("OR"):
            self._next()
            parts.append(self._parse_conjunction())
        return parts[0] if len(parts) == 1 else _Or(tuple(parts))

    def _parse_conjunction(self):
        parts = [self._parse_condition_term()]
        while self._at_word("AND"):
            self._next()
            parts.append(self._parse_condition_term())
        return parts[0] if len(parts) == 1 else _And(tuple(parts))

    def _parse_condition_term(self):
        if (self._peek() or ("", ""))[0] == "lparen":
            self._next()
            condition = self._parse_condition()
            self._expect("rparen")
            return condition
        return self._parse_comparison()

    def _parse_operand(self) -> Any:
        kind, value = self._next()
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "word":
            if "." in value:
                symbol, attr = value.split(".", 1)
                return (symbol, attr)
            if value in self._params:
                return self._params[value]
            raise QueryParseError(
                f"unknown identifier {value!r}; pass it via params=")
        raise QueryParseError(f"unexpected operand {value!r}")

    def _parse_comparison(self) -> _Comparison:
        lhs = self._parse_operand()
        op = self._expect("op")
        rhs = self._parse_operand()
        return _Comparison(lhs, op, rhs)

    def parse_within_from(self) -> tuple[str, Any, str, Any]:
        """Return (scope_kind, scope_value, start_kind, start_value)."""
        self._expect_word("WITHIN")
        kind, value = self._next()
        if kind == "number":
            amount: float = float(value) if "." in value else int(value)
        elif kind == "word" and value in self._params:
            amount = self._params[value]
        else:
            raise QueryParseError(f"expected window size, got {value!r}")
        unit = self._expect_word("EVENTS", "SECONDS", "MINUTES", "MIN")
        scope_kind = "count" if unit.upper() == "EVENTS" else "time"
        scope_value: Any = int(amount) if scope_kind == "count" else (
            float(amount) * (60.0 if unit.upper() in ("MINUTES", "MIN")
                             else 1.0))

        self._expect_word("FROM")
        if self._at_word("EVERY"):
            self._next()
            kind, value = self._next()
            if kind == "word" and value in self._params:
                slide = int(self._params[value])
            elif kind == "number":
                slide = int(float(value))
            else:
                raise QueryParseError(f"expected slide size, got {value!r}")
            self._expect_word("EVENTS")
            return scope_kind, scope_value, "every", slide
        symbol = self._expect("word")
        # tolerate Tesla-style "FROM B()" empty parentheses
        if (self._peek() or ("", ""))[0] == "lparen":
            self._next()
            self._expect("rparen")
        return scope_kind, scope_value, "symbol", symbol

    def parse_consume(self) -> ConsumptionPolicy:
        if not self._at_word("CONSUME"):
            return ConsumptionPolicy.none()
        self._next()
        if self._at_word("ALL"):
            self._next()
            return ConsumptionPolicy.all()
        self._expect("lparen")
        names: list[str] = []
        while True:
            kind, value = self._next()
            if kind == "rparen":
                break
            if kind == "word":
                names.append(value)
            elif kind == "plus":
                continue  # "B+" in CONSUME refers to the same symbol B
            else:
                raise QueryParseError(f"unexpected token {value!r} in CONSUME")
        if not names:
            return ConsumptionPolicy.none()
        return ConsumptionPolicy.selected(*names)


def _build_atom(symbol: str, definitions: dict) -> Atom:
    if symbol in definitions:
        return Atom(name=symbol, etype=None,
                    predicate=definitions[symbol].to_predicate(symbol))
    return Atom(name=symbol, etype=symbol, predicate=true_predicate)


def parse_query(text: str, name: str = "query",
                params: Mapping[str, Any] | None = None,
                selection: SelectionPolicy = SelectionPolicy.FIRST,
                max_matches: Optional[int] = 1,
                anchored: Optional[bool] = None,
                compile: Optional[bool] = None) -> Query:
    """Parse query ``text`` into a runnable :class:`Query`.

    ``params`` supplies values for free identifiers (``lowerLimit`` etc.).
    ``anchored`` defaults to ``True`` for ``FROM <symbol>`` windows whose
    opening symbol is also the first pattern position (Q1-style).
    ``compile`` toggles the fused-kernel plan (see
    :func:`repro.patterns.query.make_query`); the window-start predicate
    of ``FROM <symbol>`` windows is fused with the same machinery.
    """
    from repro.matching.kernel import compile_atom_matcher, compile_enabled

    params = dict(params or {})
    compiled = compile_enabled(compile)
    parser = _Parser(_tokenize(text), params)

    pattern_items = parser.parse_pattern_clause()
    definitions = parser.parse_define_clause()
    scope_kind, scope_value, start_kind, start_value = \
        parser.parse_within_from()
    consumption = parser.parse_consume()

    elements: list[PatternElement] = []
    first_symbol: Optional[str] = None
    for kind, payload in pattern_items:
        if kind == "atom":
            atom = _build_atom(payload, definitions)
            elements.append(atom)
        elif kind == "kleene":
            elements.append(KleenePlus(_build_atom(payload, definitions)))
        elif kind == "negation":
            elements.append(Negation(_build_atom(payload, definitions)))
        else:
            assert kind == "set"
            elements.append(SetPattern(tuple(
                _build_atom(member, definitions) for member in payload)))
        if first_symbol is None and kind in ("atom", "kleene"):
            first_symbol = payload if isinstance(payload, str) else None
    pattern = Sequence(tuple(elements))

    def start_predicate(symbol: str):
        start_atom = _build_atom(symbol, definitions)
        matcher = compile_atom_matcher(start_atom, compiled)
        predicate = lambda event, _m=matcher: _m(event, {})  # noqa: E731
        if start_atom.etype is not None:
            # declare the single event type this start accepts, so the
            # hub's routing index can skip foreign-typed events wholesale
            predicate.relevant_etype = start_atom.etype
        return predicate

    if scope_kind == "count":
        if start_kind == "every":
            window = WindowSpec.count_sliding(scope_value, start_value)
        else:
            window = WindowSpec.count_on(scope_value,
                                         start_predicate(start_value))
    else:
        if start_kind == "every":
            raise QueryParseError("time windows need a FROM <symbol> start")
        window = WindowSpec.time_on(scope_value,
                                    start_predicate(start_value))

    if anchored is None:
        anchored = start_kind == "symbol" and start_value == first_symbol

    query = make_query(
        name=name,
        pattern=pattern,
        window=window,
        selection=selection,
        consumption=consumption,
        max_matches=max_matches,
        anchored=anchored,
        description=text.strip(),
        compile=compiled,
    )
    # stamp provenance so the durability layer can re-attach this
    # query from its source after a restart
    return replace(query, text=text,
                   params=tuple(sorted(params.items())))


def render_query_text(pattern: PatternElement, window: WindowSpec,
                      consumption: ConsumptionPolicy | None = None) -> str:
    """Render a type-based pattern back into the Fig. 9 notation.

    Only patterns whose atoms match on event *type* (no predicate
    closures) can be rendered — predicates are opaque callables.  The
    output parses back into an equivalent query (round-trip property
    tested in ``tests/test_parser_roundtrip.py``).
    """
    from repro.windows.specs import CountScope, EverySlide

    def atom_text(atom: Atom) -> str:
        if atom.etype is None or atom.etype != atom.name:
            raise ValueError(
                f"atom {atom.name!r} is not a pure type match; "
                f"rendering supports type-based atoms only")
        return atom.name

    parts: list[str] = []
    elements = pattern.elements if isinstance(pattern, Sequence) \
        else (pattern,)
    for element in elements:
        if isinstance(element, Atom):
            parts.append(atom_text(element))
        elif isinstance(element, KleenePlus):
            parts.append(atom_text(element.atom) + "+")
        elif isinstance(element, Negation):
            parts.append("!" + atom_text(element.atom))
        elif isinstance(element, SetPattern):
            inner = " ".join(atom_text(a) for a in element.atoms)
            parts.append(f"SET({inner})")
        else:
            raise TypeError(f"cannot render {element!r}")
    text = f"PATTERN ({' '.join(parts)})"

    if not isinstance(window.scope, CountScope) or \
            not isinstance(window.start, EverySlide):
        raise ValueError("rendering supports count-sliding windows only")
    text += (f"\nWITHIN {window.scope.size} events "
             f"FROM every {window.start.slide} events")

    consumption = consumption or ConsumptionPolicy.none()
    if consumption.is_all:
        text += "\nCONSUME ALL"
    elif not consumption.is_none:
        names = " ".join(sorted(consumption.positions))
        text += f"\nCONSUME ({names})"
    return text
