"""Event-schema validation on the ingestion path.

:class:`ValidationMiddleware` checks every event against a declarative
schema — required attributes plus optional per-attribute types — before
it reaches the reorder stage or any engine.  Three policies:

* ``policy="null"`` (default): invalid attributes are *nulled* — the
  event is rewritten with ``None`` for each missing-required or
  wrongly-typed attribute, which the predicate layer already treats as
  SQL NULL (a comparison against a missing/null operand is false), so
  malformed events degrade gracefully instead of crashing predicates
  or silently matching.
* ``policy="reject"``: the whole event is dropped before the core
  (short-circuit), counted in :attr:`events_rejected`.
* ``policy="raise"``: :class:`ValidationError` propagates to the
  producer.

``bool`` is deliberately not accepted where ``int`` is required-typed
unless listed explicitly, mirroring the usual schema-validation
convention.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Mapping, Optional

from repro.events.event import Event
from repro.middleware.base import Middleware, MiddlewareContext

__all__ = ["ValidationError", "ValidationMiddleware"]


class ValidationError(ValueError):
    """An event failed schema validation (``policy="raise"``)."""

    def __init__(self, event: Event, problems: list[str]) -> None:
        self.event = event
        self.problems = list(problems)
        super().__init__(
            f"event {event!r} failed validation: {'; '.join(problems)}")


class ValidationMiddleware(Middleware):
    """Enforce an event schema at the interception seam.

    Parameters
    ----------
    required:
        Attribute names every event must carry.
    types:
        ``{attribute: type-or-tuple-of-types}``; attributes present but
        of the wrong type are invalid.  Attributes absent from both
        ``required`` and ``types`` pass untouched.
    etypes:
        Optional allow-list of event types; events of other types are
        invalid as a whole (nulling cannot fix a wrong ``etype``, so
        under ``policy="null"`` they are rejected and counted).
    policy:
        ``"null"`` | ``"reject"`` | ``"raise"``; see module docstring.
    """

    def __init__(self, *, required: Iterable[str] = (),
                 types: Optional[Mapping[str, type | tuple]] = None,
                 etypes: Optional[Iterable[str]] = None,
                 policy: str = "null") -> None:
        if policy not in ("null", "reject", "raise"):
            raise ValueError("policy must be 'null', 'reject' or 'raise'")
        self.required = tuple(required)
        self.types = dict(types or {})
        self.etypes = frozenset(etypes) if etypes is not None else None
        self.policy = policy
        self.events_rejected = 0
        self.events_nulled = 0
        self.attributes_nulled = 0

    # -- validation --------------------------------------------------------

    def _problems(self, event: Event) -> tuple[list[str], list[str]]:
        """Return (fixable attribute problems, fatal problems)."""
        bad_attrs: list[str] = []
        fatal: list[str] = []
        if self.etypes is not None and event.etype not in self.etypes:
            fatal.append(f"etype {event.etype!r} not allowed")
        attrs = event.attributes
        for name in self.required:
            if name not in attrs:
                bad_attrs.append(name)
        for name, expected in self.types.items():
            if name in attrs and name not in bad_attrs:
                value = attrs[name]
                if value is None:
                    continue  # already SQL NULL
                if isinstance(value, bool) and expected is not bool \
                        and not (isinstance(expected, tuple)
                                 and bool in expected):
                    bad_attrs.append(name)
                elif not isinstance(value, expected):
                    bad_attrs.append(name)
        return bad_attrs, fatal

    def _admit(self, event: Event) -> Optional[Event]:
        """The validated (possibly rewritten) event, or ``None`` when
        it must be dropped."""
        bad_attrs, fatal = self._problems(event)
        if not bad_attrs and not fatal:
            return event
        if self.policy == "raise":
            problems = fatal + [f"invalid attribute {name!r}"
                                for name in bad_attrs]
            raise ValidationError(event, problems)
        if fatal or self.policy == "reject":
            self.events_rejected += 1
            return None
        attrs = dict(event.attributes)
        for name in bad_attrs:
            attrs[name] = None  # SQL NULL: predicates treat it as missing
        self.events_nulled += 1
        self.attributes_nulled += len(bad_attrs)
        return replace(event, attributes=attrs)

    # -- hooks -------------------------------------------------------------

    def on_push(self, context: MiddlewareContext, call_next):
        event = self._admit(context.event)
        if event is None:
            return None
        context.event = event
        return call_next(context)

    def on_push_many(self, context: MiddlewareContext, call_next):
        admitted = []
        for event in context.events:
            event = self._admit(event)
            if event is not None:
                admitted.append(event)
        if not admitted:
            return None
        context.events = admitted
        return call_next(context)
