"""Sink delivery as middleware.

Before the middleware refactor every session class hand-rolled the same
sink loop: call each sink, swallow-and-record exceptions, aggregate the
failures into one :class:`SinkError` at ``flush()``/``close()``.  That
logic now lives here, as the *innermost* middleware of a session's
``on_match`` chain — user middleware runs first (it may transform or
suppress the match before any sink sees it), then
:class:`SinkDispatchMiddleware` fans the match out to the sinks with
the same isolation contract as before.

Failures are routed through the session's ``on_error`` chain (so
middleware can observe or swallow them) whose terminal records them on
the session; the session raises the aggregate :class:`SinkError` at
``flush()``/``close()`` exactly as it always has.
"""

from __future__ import annotations

from repro.middleware.base import Middleware, MiddlewareContext

__all__ = ["SinkError", "SinkDispatchMiddleware"]


class SinkError(RuntimeError):
    """One or more sink callbacks raised while matches were delivered.

    Sinks are isolated: a raising sink never corrupts the session and
    never starves the other sinks — the exception is captured, the
    remaining sinks still receive the match, and the failures surface
    here, raised by ``flush()``/``close()``.  ``errors`` holds
    ``(sink, match, exception)`` triples in delivery order; ``matches``
    holds whatever the raising call would have returned, so results are
    never lost to the error path.
    """

    def __init__(self, errors, matches=()) -> None:
        self.errors = list(errors)
        self.matches = list(matches)
        first = self.errors[0][2] if self.errors else None
        super().__init__(
            f"{len(self.errors)} sink error(s) during match delivery; "
            f"first: {first!r}")


class SinkDispatchMiddleware(Middleware):
    """Deliver each match to every sink, isolating failures.

    Installed automatically (last, i.e. innermost) by sessions built
    with sinks; a raising sink is recorded via the owning session's
    ``on_error`` chain and the remaining sinks still fire.  The match
    itself is always passed through, so callers never lose results to a
    failing sink.
    """

    def __init__(self, sinks) -> None:
        self.sinks = tuple(sinks)

    def on_match(self, context: MiddlewareContext, call_next):
        match = context.match
        for sink in self.sinks:
            try:
                sink(match)
            except Exception as error:  # noqa: BLE001 - sink isolation
                context.session._record_sink_error(sink, match, error)
        return call_next(context)
