"""Token-bucket rate limiting on the ingestion path.

:class:`RateLimitMiddleware` buckets by attachment (one bucket per
attachment name when installed on a hub's per-attachment delivery
path, one global bucket at hub or pipeline scope) and applies one of
two policies when a bucket runs dry.  A caller-supplied ``key``
function overrides the default bucketing — e.g. the serving runtime
keys buckets by *client id* (``key=lambda ctx: ctx.name``) so one
shared hub enforces per-client quotas through a single middleware
instance.  The policies:

* ``policy="shed"`` (default): the event is dropped before it reaches
  the core — ``on_push`` short-circuits, ``on_push_many`` trims the
  batch to the available tokens — and the shed is counted.
* ``policy="raise"``: :class:`RateLimitExceeded` propagates to the
  producer, which owns the retry/backoff decision.

The clock is injectable so tests (and replay harnesses) can drive the
bucket deterministically; production uses ``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.middleware.base import Middleware, MiddlewareContext

__all__ = ["RateLimitExceeded", "TokenBucket", "RateLimitMiddleware"]


class RateLimitExceeded(RuntimeError):
    """A push exceeded the configured rate (``policy="raise"``)."""

    def __init__(self, key: str, rate: float) -> None:
        self.key = key
        self.rate = rate
        super().__init__(
            f"rate limit exceeded for {key!r} ({rate:g} events/s)")


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float,
                 now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, wanted: float, now: float) -> float:
        """Take up to ``wanted`` tokens; return how many were granted
        (``wanted`` when the bucket holds enough, possibly 0)."""
        if now > self.updated:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated) * self.rate)
            self.updated = now
        granted = min(wanted, self.tokens)
        # whole events only: a partial token never admits an event
        granted = float(int(granted))
        self.tokens -= granted
        return granted


class RateLimitMiddleware(Middleware):
    """Cap the event rate entering a session, attachment, or hub.

    Parameters
    ----------
    rate:
        Sustained events/second per bucket.
    burst:
        Bucket capacity (defaults to ``rate``): the largest spike
        admitted after an idle period.
    policy:
        ``"shed"`` drops excess events silently (counted), ``"raise"``
        surfaces :class:`RateLimitExceeded` to the producer.
    clock:
        Monotonic time source, injectable for deterministic tests.
    key:
        Optional bucket-key function ``(context) -> str``.  When given
        it fully replaces the default attachment/hub/session keying,
        so callers can bucket by any context field (client id in
        ``context.name``, query name, ...).  Buckets are still created
        lazily per distinct key with the same ``rate``/``burst``.
    """

    def __init__(self, rate: float, *, burst: Optional[float] = None,
                 policy: str = "shed",
                 clock: Callable[[], float] = time.monotonic,
                 key: Optional[Callable[[MiddlewareContext], str]]
                 = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 events/s")
        if policy not in ("shed", "raise"):
            raise ValueError("policy must be 'shed' or 'raise'")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(
            1.0, float(rate))
        if self.burst < 1.0:
            raise ValueError("burst must admit at least one event")
        self.policy = policy
        self.clock = clock
        self.key = key
        self._buckets: dict[str, TokenBucket] = {}
        self.shed_total = 0
        self.shed_by_key: dict[str, int] = {}

    def _bucket_key(self, context: MiddlewareContext) -> str:
        if self.key is not None:
            return self.key(context)
        if context.attachment is not None:
            return context.attachment.name
        return "hub" if context.hub is not None else "session"

    def _take(self, context: MiddlewareContext, wanted: int) -> int:
        key = self._bucket_key(context)
        now = self.clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[key] = bucket
        granted = int(bucket.take(float(wanted), now))
        if granted < wanted:
            if self.policy == "raise":
                raise RateLimitExceeded(key, self.rate)
            shed = wanted - granted
            self.shed_total += shed
            self.shed_by_key[key] = self.shed_by_key.get(key, 0) + shed
        return granted

    def on_push(self, context: MiddlewareContext, call_next):
        if self._take(context, 1) == 0:
            return None  # shed: short-circuit before the core sees it
        return call_next(context)

    def on_push_many(self, context: MiddlewareContext, call_next):
        events = context.events
        granted = self._take(context, len(events))
        if granted == 0:
            return None
        if granted < len(events):
            # admit the prefix the bucket can pay for, shed the rest
            context.events = events[:granted]
        return call_next(context)
