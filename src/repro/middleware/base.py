"""Composable interception for the ingestion/emission path.

Every layer of the system that moves events in or matches out —
:class:`~repro.streaming.session.Session`,
:class:`~repro.streaming.builder.PipelineSession`,
:class:`~repro.hub.core.StreamHub` and its asyncio facade — routes
through one *middleware chain*.  A :class:`Middleware` subclass
overrides the hooks it cares about; everything it does not override
costs nothing (the chain for an un-overridden hook is simply not
built, so the no-op case stays allocation-free on the hot path).

The design follows the FastMCP/wags fine-grained interception model:
``on_<operation>(context, call_next)`` hooks plus a context object,
composed *call-next style* — each hook receives the rest of the chain
as a callable and decides whether to

* **observe**: do something, then ``return call_next(context)``;
* **transform**: rewrite ``context.event`` / ``context.events`` /
  ``context.match`` before calling ``call_next``;
* **short-circuit**: return *without* calling ``call_next`` (the
  intercepted operation never reaches the core — a dropped event, a
  shed push, a suppressed match), or raise to refuse it loudly.

Mechanism lives in the core, policy stacks outside it (Dearle et al.,
"Towards Adaptable and Adaptive Policy-Free Middleware"): the engines
know nothing about auth, quotas, validation or metrics — those are
middleware, configured declaratively at any layer::

    repro.pipeline(query).engine("spectre", k=4) \\
         .use(ValidationMiddleware(schema)) \\
         .use(MetricsMiddleware()) \\
         .sink(deliver).open()

    hub = StreamHub(middleware=[RateLimitMiddleware(rate=10_000)])
    hub.attach(query, middleware=[TraceMiddleware()])

Hook semantics
--------------
===============  ======================================================
``on_push``      One event entering a session (per-attachment delivery
                 on the hub path) or a hub (shared ingestion, before
                 the reorder stage).  ``call_next`` returns the matches
                 the event validated (session) or the number of
                 matches delivered (hub).  Short-circuit drops the
                 event.
``on_push_many`` A chunk entering via ``push_many``; ``context.events``
                 is the list.  Trim or replace it to shed load.
``on_flush``     End-of-stream.  ``call_next`` returns the trailing
                 matches (session) / delivered count (hub).
``on_attach``    A query subscribing to a hub; ``context.query``,
                 ``context.name``, ``context.engine`` are set and
                 ``call_next`` performs the attach, returning the
                 :class:`~repro.hub.core.Attachment`.  Raise to refuse.
``on_detach``    An attachment leaving; ``call_next`` returns the
                 matches its final flush surfaced.
``on_match``     One validated match about to be delivered (sinks and
                 queues).  ``call_next`` returns the match; return
                 ``None`` to suppress it.
``on_error``     A sink raised during delivery.  ``context.error``,
                 ``context.sink``, ``context.match`` are set; the
                 terminal records the failure for the aggregated
                 :class:`~repro.middleware.sinks.SinkError`.  Not
                 calling ``call_next`` swallows the error.
===============  ======================================================

In the asyncio facade (:class:`~repro.hub.aio.AsyncStreamHub`) hooks
may be ``async def`` — each link of the chain awaits whatever the next
one returns.  A *sync* hook still composes (its ``call_next`` hands
back an awaitable which the chain awaits on its behalf), but then the
hook cannot inspect the downstream result; write hooks that act before
``call_next`` — or make them ``async`` — when running under the
facade.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Middleware",
    "MiddlewareContext",
    "MiddlewareStack",
    "restrict",
]


class MiddlewareContext:
    """State of one intercepted operation, shared along the chain.

    Only the fields relevant to the current hook are populated (see the
    hook table in the module docstring); the rest are ``None``.
    Middleware may rewrite the payload fields (``event``, ``events``,
    ``match``) before calling ``call_next`` — the terminal operation
    reads them from the context, so the rewrite is what the core sees.
    """

    __slots__ = ("hook", "event", "events", "match", "error", "sink",
                 "session", "hub", "attachment", "query", "name", "engine",
                 "drain")

    def __init__(self, hook: str = "", *, event=None, events=None,
                 match=None, error=None, sink=None, session=None,
                 hub=None, attachment=None, query=None, name=None,
                 engine=None, drain=None) -> None:
        self.hook = hook
        self.event = event
        self.events = events
        self.match = match
        self.error = error
        self.sink = sink
        self.session = session
        self.hub = hub
        self.attachment = attachment
        self.query = query
        self.name = name
        self.engine = engine
        self.drain = drain

    @property
    def watermark(self) -> Optional[float]:
        """The intercepted layer's current watermark (session's if the
        context is session-scoped, else the hub's), ``None`` early."""
        if self.session is not None:
            return self.session.watermark
        if self.hub is not None:
            return self.hub.watermark
        return None

    def stats(self):
        """Best-effort stats snapshot of the intercepted layer: the
        attachment's :class:`~repro.hub.core.AttachmentStats`, else the
        hub's :class:`~repro.hub.core.HubStats`, else ``None``."""
        if self.attachment is not None:
            return self.attachment.stats()
        if self.hub is not None:
            return self.hub.stats()
        return None

    def __repr__(self) -> str:
        scope = self.attachment.name if self.attachment is not None \
            else ("hub" if self.hub is not None else "session")
        return f"MiddlewareContext({self.hook}, scope={scope!r})"


class Middleware:
    """Base class: override only the hooks you need.

    Un-overridden hooks are *absent* from the composed chains (detected
    by identity against this base class), so a middleware that only
    implements ``on_match`` adds zero cost to every push.
    """

    def on_push(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_push_many(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_flush(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_attach(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_detach(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_match(self, context: MiddlewareContext, call_next):
        return call_next(context)

    def on_error(self, context: MiddlewareContext, call_next):
        return call_next(context)


HOOKS = ("on_push", "on_push_many", "on_flush", "on_attach",
         "on_detach", "on_match", "on_error")


class _Restricted:
    """A view of a middleware exposing only ``hooks`` (used by the hub
    to run its own middleware's match/error hooks inside each
    attachment's session chain without double-running ingestion
    hooks)."""

    __slots__ = ("middleware", "hooks")

    def __init__(self, middleware: Middleware,
                 hooks: frozenset[str]) -> None:
        self.middleware = middleware
        self.hooks = hooks

    def __repr__(self) -> str:
        return (f"restrict({self.middleware!r}, "
                f"{sorted(self.hooks)})")


def restrict(middleware: Middleware,
             hooks: Iterable[str]) -> _Restricted:
    """Expose only ``hooks`` of ``middleware`` to the stack it joins."""
    return _Restricted(middleware, frozenset(hooks))


def _implements(middleware, name: str) -> bool:
    """Does this middleware override ``name``?  Restricted views only
    implement hooks they both allow and override."""
    if isinstance(middleware, _Restricted):
        return name in middleware.hooks \
            and _implements(middleware.middleware, name)
    impl = getattr(type(middleware), name, None)
    return impl is not None and impl is not getattr(Middleware, name)


def _hook(middleware, name: str) -> Callable:
    if isinstance(middleware, _Restricted):
        return getattr(middleware.middleware, name)
    return getattr(middleware, name)


def _link(hook: Callable, call_next: Callable) -> Callable:
    def step(context: MiddlewareContext):
        return hook(context, call_next)
    return step


def _alink(hook: Callable, call_next: Callable) -> Callable:
    async def step(context: MiddlewareContext):
        result = hook(context, call_next)
        if inspect.isawaitable(result):
            result = await result
        return result
    return step


class MiddlewareStack:
    """An ordered middleware list compiled into per-hook call chains.

    ``chain(hook, terminal)`` returns a single callable — the hooks
    nested call-next style around ``terminal`` — or ``None`` when no
    middleware overrides the hook, so callers can guard the hot path
    with one ``is None`` check and pay nothing for the no-op chain.
    Chains are built once at install time, not per call.
    """

    def __init__(self, middlewares: Iterable[Any] = ()) -> None:
        self.middlewares = list(middlewares)

    def __bool__(self) -> bool:
        return bool(self.middlewares)

    def hooked(self, name: str) -> bool:
        return any(_implements(mw, name) for mw in self.middlewares)

    def chain(self, name: str, terminal: Callable) -> Optional[Callable]:
        """Compose the sync chain for ``name`` around ``terminal``;
        ``None`` when nothing intercepts it."""
        hooks = [_hook(mw, name) for mw in self.middlewares
                 if _implements(mw, name)]
        if not hooks:
            return None
        call = terminal
        for hook in reversed(hooks):
            call = _link(hook, call)
        return call

    def async_chain(self, name: str,
                    terminal: Callable) -> Optional[Callable]:
        """Like :meth:`chain` but every link awaits awaitable results,
        so hooks may freely be ``async def``.  ``terminal`` must be a
        coroutine function."""
        hooks = [_hook(mw, name) for mw in self.middlewares
                 if _implements(mw, name)]
        if not hooks:
            return None
        call = terminal
        for hook in reversed(hooks):
            call = _alink(hook, call)
        return call
