"""Prometheus-style metrics over the interception seam.

:class:`MetricsMiddleware` maintains a counter/gauge registry fed by
the middleware hooks (events, batches, matches, sink errors, attach /
detach / flush lifecycle, watermark) and can *snapshot* any stats
object exposing ``to_dict()`` — :class:`~repro.spectre.engine.RunStats`,
:class:`~repro.hub.core.HubStats` (including its nested attachment and
sharing sections) — into gauges.  ``render()`` emits the standard text
exposition format, ready for a ``/metrics`` endpoint::

    metrics = MetricsMiddleware()
    hub = StreamHub(middleware=[metrics])
    ...
    metrics.observe_stats(hub.stats().to_dict())
    print(metrics.render())
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.middleware.base import Middleware, MiddlewareContext

__all__ = ["Counter", "Gauge", "MetricsRegistry", "MetricsMiddleware"]

_NO_LABELS: tuple = ()


class _Metric:
    """Shared storage: one value per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.values: dict[tuple, float] = {}

    def value(self, labels: tuple = _NO_LABELS) -> float:
        return self.values.get(labels, 0.0)

    def samples(self):
        return sorted(self.values.items())


class Counter(_Metric):
    """Monotonically increasing value (per label tuple)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, labels: tuple = _NO_LABELS) -> None:
        self.values[labels] = self.values.get(labels, 0.0) + amount


class Gauge(_Metric):
    """Point-in-time value (per label tuple)."""

    kind = "gauge"

    def set(self, value: float, labels: tuple = _NO_LABELS) -> None:
        self.values[labels] = value


class MetricsRegistry:
    """A named collection of metrics with text exposition."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._metrics: dict[str, _Metric] = {}

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def _register(self, cls, name: str, help_text: str,
                  labelnames) -> _Metric:
        full = f"{self.prefix}_{name}" if self.prefix else name
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(full, help_text, tuple(labelnames))
            self._metrics[full] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {full!r} already registered "
                             f"as a {metric.kind}")
        return metric  # type: ignore[return-value]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-safe dump: ``{metric: {label-suffix: value}}``."""
        out: dict[str, dict[str, float]] = {}
        for name, metric in sorted(self._metrics.items()):
            cell: dict[str, float] = {}
            for labels, value in metric.samples():
                key = ",".join(f"{k}={v}" for k, v
                               in zip(metric.labelnames, labels)) or ""
                cell[key] = value
            out[name] = cell
        return out

    def render(self) -> str:
        """Prometheus text exposition format."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for labels, value in metric.samples():
                if labels:
                    rendered = ",".join(
                        f'{k}="{v}"' for k, v
                        in zip(metric.labelnames, labels))
                    lines.append(f"{name}{{{rendered}}} {value:g}")
                else:
                    lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"


def _scope(context: MiddlewareContext) -> str:
    if context.attachment is not None:
        return context.attachment.name
    if context.name is not None:  # on_attach: attachment not built yet
        return context.name
    return "hub" if context.hub is not None else "session"


class MetricsMiddleware(Middleware):
    """Count and gauge everything crossing the interception seam.

    Works at any scope: installed on a pipeline it labels samples
    ``scope="session"``, installed on a hub it sees hub ingestion
    (``scope="hub"``) plus every attachment's matches and errors
    (labelled by attachment name).  All hooks act *before* delegating,
    so the middleware composes unchanged under the asyncio facade.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        reg = self.registry
        scope = ("scope",)
        self.events_total = reg.counter(
            "events_pushed_total", "Events offered via push/push_many",
            scope)
        self.batches_total = reg.counter(
            "push_batches_total", "push_many batches offered", scope)
        self.matches_total = reg.counter(
            "matches_total", "Complex events delivered", scope)
        self.sink_errors_total = reg.counter(
            "sink_errors_total", "Sink callbacks that raised", scope)
        self.flushes_total = reg.counter(
            "flushes_total", "End-of-stream flushes", scope)
        self.attach_total = reg.counter(
            "attachments_attached_total", "Queries attached", scope)
        self.detach_total = reg.counter(
            "attachments_detached_total", "Queries detached", scope)
        self.watermark_gauge = reg.gauge(
            "watermark", "Low watermark of the intercepted layer", scope)

    # -- hooks -------------------------------------------------------------

    def on_push(self, context: MiddlewareContext, call_next):
        labels = (_scope(context),)
        self.events_total.inc(1.0, labels)
        watermark = context.watermark
        if watermark is not None and watermark != float("-inf"):
            self.watermark_gauge.set(watermark, labels)
        return call_next(context)

    def on_push_many(self, context: MiddlewareContext, call_next):
        labels = (_scope(context),)
        self.events_total.inc(float(len(context.events)), labels)
        self.batches_total.inc(1.0, labels)
        return call_next(context)

    def on_match(self, context: MiddlewareContext, call_next):
        self.matches_total.inc(1.0, (_scope(context),))
        return call_next(context)

    def on_error(self, context: MiddlewareContext, call_next):
        self.sink_errors_total.inc(1.0, (_scope(context),))
        return call_next(context)

    def on_flush(self, context: MiddlewareContext, call_next):
        labels = (_scope(context),)
        self.flushes_total.inc(1.0, labels)
        watermark = context.watermark
        if watermark is not None and watermark != float("-inf"):
            self.watermark_gauge.set(watermark, labels)
        return call_next(context)

    def on_attach(self, context: MiddlewareContext, call_next):
        self.attach_total.inc(1.0, (_scope(context),))
        return call_next(context)

    def on_detach(self, context: MiddlewareContext, call_next):
        self.detach_total.inc(1.0, (_scope(context),))
        return call_next(context)

    # -- stats snapshotting ------------------------------------------------

    def observe_stats(self, stats, prefix: str = "stats") -> None:
        """Flatten a ``to_dict()``-style snapshot into gauges.

        Accepts either the dict itself or any object exposing
        ``to_dict()`` (``RunStats``, ``HubStats``, ``SharingStats``,
        ``AttachmentStats``).  Nested mappings extend the metric name;
        the hub's ``attachments`` list is labelled by attachment name;
        non-numeric leaves are skipped.
        """
        if hasattr(stats, "to_dict"):
            stats = stats.to_dict()
        self._walk(prefix, stats, _NO_LABELS)

    def _walk(self, path: str, node, labels: tuple) -> None:
        if isinstance(node, Mapping):
            for key, value in node.items():
                self._walk(f"{path}_{key}", value, labels)
        elif isinstance(node, (list, tuple)):
            for entry in node:
                if isinstance(entry, Mapping) and "name" in entry:
                    self._walk(path, {k: v for k, v in entry.items()
                                      if k != "name"},
                               labels + (str(entry["name"]),))
        elif isinstance(node, bool):
            self._set_gauge(path, float(node), labels)
        elif isinstance(node, (int, float)):
            self._set_gauge(path, float(node), labels)

    def _set_gauge(self, path: str, value: float, labels: tuple) -> None:
        labelnames = ("scope",) * len(labels)
        self.registry.gauge(path, labelnames=labelnames).set(value, labels)

    def observe_durability(self, durability: dict) -> None:
        """Set the durability gauges from a manager's ``stats_dict()``
        (the registry prefix makes them ``repro_wal_bytes``,
        ``repro_checkpoint_age_seconds``,
        ``repro_recovery_replayed_events``)."""
        recovery = durability.get("recovery") or {}
        self.registry.gauge(
            "wal_bytes",
            "Bytes across all live WAL segments").set(
            float(durability.get("wal_bytes", 0)))
        self.registry.gauge(
            "checkpoint_age_seconds",
            "Seconds since the last snapshot checkpoint").set(
            float(durability.get("checkpoint_age_seconds", 0.0)))
        self.registry.gauge(
            "recovery_replayed_events",
            "Events replayed by the last crash recovery").set(
            float(recovery.get("replayed_events", 0)))

    # -- convenience -------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        return self.registry.snapshot()

    def render(self) -> str:
        return self.registry.render()
