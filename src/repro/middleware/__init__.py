"""Composable interception middleware for sessions, pipelines and hubs.

See :mod:`repro.middleware.base` for the hook model and
:class:`MiddlewareStack` composition semantics.  Production middleware
shipped here:

* :class:`MetricsMiddleware` — Prometheus-style counters/gauges plus
  ``to_dict()`` stats snapshotting and text exposition.
* :class:`RateLimitMiddleware` — per-attachment token buckets with
  shed-or-raise policy.
* :class:`ValidationMiddleware` — declarative event schema with
  null (SQL-NULL), reject, or raise policy.
* :class:`TraceMiddleware` — bounded ring buffer of structured
  per-hook records.

:class:`SinkDispatchMiddleware` is the internal middleware sessions
install for sink delivery; :class:`SinkError` is the aggregate raised
at ``flush()``/``close()`` when sinks failed.
"""

from repro.middleware.base import (
    Middleware,
    MiddlewareContext,
    MiddlewareStack,
    restrict,
)
from repro.middleware.metrics import (
    Counter,
    Gauge,
    MetricsMiddleware,
    MetricsRegistry,
)
from repro.middleware.ratelimit import (
    RateLimitExceeded,
    RateLimitMiddleware,
    TokenBucket,
)
from repro.middleware.sinks import SinkDispatchMiddleware, SinkError
from repro.middleware.trace import TraceMiddleware
from repro.middleware.validation import ValidationError, ValidationMiddleware

__all__ = [
    "Middleware",
    "MiddlewareContext",
    "MiddlewareStack",
    "restrict",
    "MetricsMiddleware",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "RateLimitMiddleware",
    "RateLimitExceeded",
    "TokenBucket",
    "ValidationMiddleware",
    "ValidationError",
    "TraceMiddleware",
    "SinkDispatchMiddleware",
    "SinkError",
]
