"""Structured tracing of the interception seam.

:class:`TraceMiddleware` appends one structured record per intercepted
hook invocation to a bounded ring buffer (``collections.deque`` with
``maxlen``), so a live system can always answer "what were the last N
things that crossed this seam?" without unbounded memory.  Records are
plain JSON-safe dicts::

    {"n": 17, "hook": "on_match", "scope": "spikes",
     "query": "spikes", "anchor": 4012, "constituents": 3}

Records are captured *on entry* (before delegating), so the middleware
behaves identically under the asyncio facade.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.middleware.base import Middleware, MiddlewareContext

__all__ = ["TraceMiddleware"]


def _scope(context: MiddlewareContext) -> str:
    if context.attachment is not None:
        return context.attachment.name
    if context.name is not None:
        return context.name
    return "hub" if context.hub is not None else "session"


class TraceMiddleware(Middleware):
    """Ring-buffered per-hook trace records.

    Parameters
    ----------
    capacity:
        Ring size; the oldest records fall off first.
    hooks:
        Optional subset of hook names to trace (default: all).  Note
        the stack only builds chains for hooks a middleware class
        overrides, so restricting here just drops records — use
        :func:`~repro.middleware.base.restrict` to avoid the hook cost
        entirely.
    """

    def __init__(self, capacity: int = 256,
                 hooks: Optional[tuple[str, ...]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hooks = frozenset(hooks) if hooks is not None else None
        self._records: deque[dict] = deque(maxlen=capacity)
        self._n = 0

    @property
    def records(self) -> list[dict]:
        """The buffered records, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def _record(self, context: MiddlewareContext, **fields) -> None:
        if self.hooks is not None and context.hook not in self.hooks:
            return
        self._n += 1
        record = {"n": self._n, "hook": context.hook,
                  "scope": _scope(context)}
        record.update(fields)
        self._records.append(record)

    # -- hooks -------------------------------------------------------------

    def on_push(self, context: MiddlewareContext, call_next):
        event = context.event
        self._record(context, seq=event.seq, etype=event.etype,
                     timestamp=event.timestamp)
        return call_next(context)

    def on_push_many(self, context: MiddlewareContext, call_next):
        events = context.events
        first = events[0] if events else None
        self._record(context, count=len(events),
                     first_seq=None if first is None else first.seq,
                     last_seq=None if first is None else events[-1].seq)
        return call_next(context)

    def on_flush(self, context: MiddlewareContext, call_next):
        self._record(context)
        return call_next(context)

    def on_attach(self, context: MiddlewareContext, call_next):
        query = context.query
        self._record(context,
                     query=None if query is None else query.name,
                     engine=context.engine)
        return call_next(context)

    def on_detach(self, context: MiddlewareContext, call_next):
        self._record(context)
        return call_next(context)

    def on_match(self, context: MiddlewareContext, call_next):
        match = context.match
        seqs = match.constituent_seqs
        self._record(context, query=match.query_name,
                     anchor=seqs[-1] if seqs else None,
                     constituents=len(seqs))
        return call_next(context)

    def on_error(self, context: MiddlewareContext, call_next):
        self._record(context, error=repr(context.error))
        return call_next(context)
