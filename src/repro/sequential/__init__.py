"""Sequential (ground-truth) engine."""

from repro.sequential.engine import (
    SequentialEngine,
    SequentialResult,
    ground_truth_completion_probability,
    run_sequential,
)

__all__ = [
    "SequentialEngine",
    "SequentialResult",
    "run_sequential",
    "ground_truth_completion_probability",
]
