"""Sequential baseline engine.

This is the reference semantics: windows are processed strictly one after
the other ("the standard procedure to deal with data dependencies is to
wait with processing w2 until w1 is completely processed", Sec. 2.3).  A
global :class:`~repro.consumption.ledger.ConsumptionLedger` carries
consumptions across windows — an event consumed in window *w* is excluded
from every later window.

SPECTRE's correctness contract is defined against this engine: it must
emit exactly the same complex events (Sec. 2.3, "no false-positives and no
false-negatives").

The engine also measures the **ground-truth completion probability** of
consumption groups — "the number of created consumption groups divided by
the number of produced complex events provides the ground truth value"
(Sec. 4.2.1) — which reproduces Figs. 10(d)/(e).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.consumption.ledger import ConsumptionLedger
from repro.matching.base import Feedback
from repro.patterns.query import Query
from repro.windows.splitter import Splitter
from repro.windows.window import Window


@dataclass
class SequentialResult:
    """Outcome of a sequential run."""

    complex_events: list[ComplexEvent]
    windows: int
    groups_created: int
    groups_completed: int
    events_fed: int
    events_skipped_consumed: int

    @property
    def completion_probability(self) -> float:
        """Ground-truth CG completion probability (Sec. 4.2.1)."""
        if self.groups_created == 0:
            return 0.0
        return self.groups_completed / self.groups_created

    def identities(self) -> list[tuple]:
        """Order-preserving identities for equivalence checks."""
        return [ce.identity() for ce in self.complex_events]


class SequentialEngine:
    """Runs a query over a finite stream, one window at a time."""

    def __init__(self, query: Query) -> None:
        self.query = query

    def run(self, events: Iterable[Event]) -> SequentialResult:
        """Split ``events`` into windows and process them in order."""
        splitter = Splitter(self.query.window)
        windows = splitter.split_all(events)
        ledger = ConsumptionLedger()
        result = SequentialResult(
            complex_events=[], windows=len(windows), groups_created=0,
            groups_completed=0, events_fed=0, events_skipped_consumed=0)
        for window in windows:
            self._process_window(window, ledger, result)
        return result

    def _process_window(self, window: Window, ledger: ConsumptionLedger,
                        result: SequentialResult) -> None:
        detector = self.query.new_detector(window.start_event)
        for event in window.events():
            if detector.done:
                break
            if ledger.is_consumed(event):
                result.events_skipped_consumed += 1
                continue
            result.events_fed += 1
            feedback = detector.process(event)
            self._apply(feedback, window, ledger, result)
        self._apply(detector.close(), window, ledger, result)

    def _apply(self, feedback: Feedback, window: Window,
               ledger: ConsumptionLedger, result: SequentialResult) -> None:
        result.groups_created += len(feedback.created)
        for completion in feedback.completed:
            result.groups_completed += 1
            ledger.consume(completion.consumed)
            result.complex_events.append(ComplexEvent(
                query_name=self.query.name,
                window_id=window.window_id,
                constituents=completion.constituents,
                attributes=completion.attributes,
            ))


def run_sequential(query: Query, events: Iterable[Event]) -> SequentialResult:
    """One-call convenience wrapper."""
    return SequentialEngine(query).run(events)


def ground_truth_completion_probability(
        query: Query, events: Sequence[Event]) -> float:
    """The Fig. 10(d)/(e) measurement as a standalone helper."""
    return run_sequential(query, events).completion_probability
