"""Sequential baseline engine.

This is the reference semantics: windows are processed strictly one after
the other ("the standard procedure to deal with data dependencies is to
wait with processing w2 until w1 is completely processed", Sec. 2.3).  A
global :class:`~repro.consumption.ledger.ConsumptionLedger` carries
consumptions across windows — an event consumed in window *w* is excluded
from every later window.

SPECTRE's correctness contract is defined against this engine: it must
emit exactly the same complex events (Sec. 2.3, "no false-positives and no
false-negatives").

The engine also measures the **ground-truth completion probability** of
consumption groups — "the number of created consumption groups divided by
the number of produced complex events provides the ground truth value"
(Sec. 4.2.1) — which reproduces Figs. 10(d)/(e).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.consumption.ledger import ConsumptionLedger
from repro.matching.base import Feedback
from repro.matching.kernel import classifier_for
from repro.patterns.query import Query
from repro.streaming.session import Session, drive
from repro.windows.splitter import Splitter
from repro.windows.window import Window


@dataclass
class SequentialResult:
    """Outcome of a sequential run."""

    complex_events: list[ComplexEvent]
    windows: int
    groups_created: int
    groups_completed: int
    events_fed: int
    events_skipped_consumed: int
    # events skipped by the compiled plan's type prefilter, summed over
    # windows (0 on the interpreted path / UDF queries)
    events_prefiltered: int = 0

    @property
    def completion_probability(self) -> float:
        """Ground-truth CG completion probability (Sec. 4.2.1)."""
        if self.groups_created == 0:
            return 0.0
        return self.groups_completed / self.groups_created

    def identities(self) -> list[tuple]:
        """Order-preserving identities for equivalence checks."""
        return [ce.identity() for ce in self.complex_events]


class SequentialSession(Session):
    """Push-based driving of the sequential engine.

    A window is processed the moment the stream proves it complete (the
    splitter closes it), against the ledger state left by all earlier
    windows — exactly the batch order, so streaming and batch results
    are identical, statistics included.
    """

    def __init__(self, engine: "SequentialEngine", *, eager: bool = True,
                 gc: bool | None = None) -> None:
        super().__init__(eager=eager, gc=gc)
        self.engine = engine
        self._splitter = Splitter(engine.query.window,
                                  classifier=classifier_for(engine.query))
        self._ledger = ConsumptionLedger()
        self._pending: deque[Window] = deque()
        self._result = SequentialResult(
            complex_events=[], windows=0, groups_created=0,
            groups_completed=0, events_fed=0, events_skipped_consumed=0)
        self._last_window_id = -1

    def _ingest(self, event: Event) -> None:
        self._splitter.ingest(event)
        self._pending.extend(self._splitter.drain_closed())

    def _finish(self) -> None:
        self._splitter.finish()
        self._pending.extend(self._splitter.drain_closed())

    def _drain(self) -> list[ComplexEvent]:
        before = len(self._result.complex_events)
        classifier = self._splitter.classifier
        while self._pending:
            window = self._pending.popleft()
            self._result.windows += 1
            self.engine._process_window(window, self._ledger, self._result,
                                        classifier)
            self._last_window_id = window.window_id
        return self._result.complex_events[before:]

    def _collect_garbage(self) -> None:
        self._splitter.retire(self._last_window_id)
        self._splitter.trim_to_live()

    def result(self) -> SequentialResult:
        return self._result

    def consumed_seqs(self) -> frozenset[int]:
        return self._ledger.snapshot()


class SequentialEngine:
    """Runs a query over a stream, one window at a time."""

    def __init__(self, query: Query) -> None:
        self.query = query

    def open(self, *, eager: bool = True,
             gc: bool | None = None) -> SequentialSession:
        """Open a push-based streaming session (Engine protocol)."""
        return SequentialSession(self, eager=eager, gc=gc)

    def run(self, events: Iterable[Event]) -> SequentialResult:
        """Process a finite stream to completion.

        Thin batch wrapper over the session API:
        ``open(eager=False)`` → ``push*`` → ``flush()``.
        """
        with self.open(eager=False) as session:
            drive(session, events)
            return session.result()

    def _process_window(self, window: Window, ledger: ConsumptionLedger,
                        result: SequentialResult,
                        classifier=None) -> None:
        detector = self.query.new_detector(window.start_event)
        if classifier is not None:
            # compiled plan: events were classified once at ingestion;
            # irrelevant ones are skipped in O(1), before the ledger
            # check, without calling the detector (an event no atom can
            # bind is never consumed and never matters)
            flags = classifier.flags(window.start_pos, window.end_pos)
            for event, is_relevant in zip(window.events(), flags):
                if detector.done:
                    break
                if not is_relevant:
                    result.events_prefiltered += 1
                    continue
                if ledger.is_consumed(event):
                    result.events_skipped_consumed += 1
                    continue
                result.events_fed += 1
                feedback = detector.process(event)
                if not feedback.is_empty:
                    self._apply(feedback, window, ledger, result)
        else:
            for event in window.events():
                if detector.done:
                    break
                if ledger.is_consumed(event):
                    result.events_skipped_consumed += 1
                    continue
                result.events_fed += 1
                feedback = detector.process(event)
                if not feedback.is_empty:
                    self._apply(feedback, window, ledger, result)
        self._apply(detector.close(), window, ledger, result)

    def _apply(self, feedback: Feedback, window: Window,
               ledger: ConsumptionLedger, result: SequentialResult) -> None:
        result.groups_created += len(feedback.created)
        for completion in feedback.completed:
            result.groups_completed += 1
            ledger.consume(completion.consumed)
            result.complex_events.append(ComplexEvent(
                query_name=self.query.name,
                window_id=window.window_id,
                constituents=completion.constituents,
                attributes=completion.attributes,
            ))


def run_sequential(query: Query, events: Iterable[Event]) -> SequentialResult:
    """Deprecated: use ``repro.pipeline(query).engine("sequential")``
    (or ``SequentialEngine(query).run/open``)."""
    import warnings
    warnings.warn(
        "run_sequential() is deprecated; use repro.pipeline(query)"
        ".engine('sequential').run(events) — or .open() for streaming",
        DeprecationWarning, stacklevel=2)
    from repro.streaming.builder import pipeline
    return pipeline(query).engine("sequential").run(events)


def ground_truth_completion_probability(
        query: Query, events: Sequence[Event]) -> float:
    """The Fig. 10(d)/(e) measurement as a standalone helper."""
    return run_sequential(query, events).completion_probability
