"""Monotonic id generation.

Every entity that needs a stable, process-local identity (windows, window
versions, consumption groups) draws its id from an :class:`IdGenerator`.
Ids are small integers, which keeps log output readable and makes ordering
by creation time trivial.
"""

from __future__ import annotations

import itertools


class IdGenerator:
    """Hands out consecutive integer ids starting from ``start``.

    >>> gen = IdGenerator()
    >>> gen.next(), gen.next(), gen.next()
    (0, 1, 2)
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next unused id."""
        return next(self._counter)
