"""Argument validation helpers.

``require`` raises ``ValueError`` with a readable message; it exists so that
public constructors can validate their inputs in one line without drowning
the constructor body in ``if ...: raise`` blocks.
"""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)
