"""Small shared utilities (deterministic RNG helpers, id generation)."""

from repro.utils.ids import IdGenerator
from repro.utils.validation import require

__all__ = ["IdGenerator", "require"]
