"""Detector protocol: the interface between pattern logic and engines.

The paper implements pattern detection as a user-defined function (UDF)
inside SPECTRE (Sec. 4.1) that reports *feedback* to the runtime (Fig. 8):
each processed event may

1. complete partial matches (→ complex events, consumption groups
   *completed*),
2. abandon partial matches (→ consumption groups *abandoned*),
3. create new partial matches (→ consumption groups *created*),
4. be added to existing partial matches (→ consumption-group event sets
   updated).

Every engine in this repository (sequential baseline, T-REX baseline,
SPECTRE simulated and threaded) drives detectors through this one
protocol, which is what makes the output-equivalence tests meaningful.

A detector instance is *per window (version)*: engines create a fresh
detector via the query's factory for every window version they process,
feed it the window's non-suppressed events in order, and call
:meth:`Detector.close` when the window ends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.events.event import Event


class PartialMatch(abc.ABC):
    """A live partial match inside a detector.

    Engines wrap these in consumption groups; they read ``delta`` (the
    inverse degree of completion, Sec. 3.2.1) when predicting completion
    probabilities and ``consumable`` to know which events the match would
    consume.
    """

    match_id: int

    @property
    @abc.abstractmethod
    def delta(self) -> int:
        """Minimum number of further events required to complete."""

    @property
    @abc.abstractmethod
    def consumable(self) -> Sequence[Event]:
        """Events bound so far that the consumption policy would consume."""


@dataclass(frozen=True)
class Completion:
    """A completed pattern instance."""

    match: PartialMatch
    constituents: tuple[Event, ...]
    consumed: tuple[Event, ...]
    attributes: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class Feedback:
    """What one ``process``/``close`` call did (Fig. 8 cases 1–4)."""

    created: list[PartialMatch] = field(default_factory=list)
    added: list[tuple[PartialMatch, Event]] = field(default_factory=list)
    completed: list[Completion] = field(default_factory=list)
    abandoned: list[PartialMatch] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.created or self.added or self.completed
                    or self.abandoned)

    def merge(self, other: "Feedback") -> None:
        """Fold ``other`` into this feedback (used by close cascades)."""
        self.created.extend(other.created)
        self.added.extend(other.added)
        self.completed.extend(other.completed)
        self.abandoned.extend(other.abandoned)


class Detector(abc.ABC):
    """Incremental pattern detector for one window (version).

    Contract
    --------
    * Events are fed in window order; *suppressed* events are simply never
      fed (the engine skips them — Fig. 8 line 13).
    * When a completion consumes events, the detector itself abandons any
      other partial match containing a consumed event (an event may be
      part of at most one pattern instance) and reports those abandons in
      the same feedback.
    * After ``close()`` the detector must not be used again.
    """

    @abc.abstractmethod
    def process(self, event: Event) -> Feedback:
        """Process the next (non-suppressed) event of the window."""

    @abc.abstractmethod
    def close(self) -> Feedback:
        """End of window: abandon all still-open partial matches."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """True once no further match can occur (e.g. the query's match
        budget is exhausted) — engines may stop feeding events early."""

    @property
    def delta_max(self) -> int:
        """Largest possible δ of this detector's matches (Markov state
        space size hint).  Defaults to 1; concrete detectors override."""
        return 1
