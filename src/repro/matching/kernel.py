"""Query → kernel compilation: the interpreted hot path, specialized.

The paper's T-REX baseline "automatically translates queries into state
machines" (Sec. 4.2.3); this module finishes that thought and translates
them into *specialized kernels*.  Three costs dominate the per-event
interpretation tax that every engine pays:

1. **Predicate trees** — a DEFINE condition executes as a chain of
   nested closures (``_Or`` → ``_And`` → ``_Comparison`` → ``resolve``),
   each call re-discovering the comparison operator and attribute keys.
   :func:`compile_atom_matcher` fuses an atom's type check and its whole
   predicate tree into **one generated code object** with the operators,
   attribute keys and literals constant-folded into it.
2. **isinstance dispatch** — the generic NFA detector re-classifies
   every pattern element (`Atom`? `KleenePlus`? `SetPattern`?) on every
   ``step``/``_satisfied``/``delta`` call.  :class:`QueryPlan` tags each
   element with an int *kind code* once, at compile time, so the
   detector runs table-dispatched.
3. **Re-filtering per window** — with sliding windows every event is
   offered to every overlapping window, and each offer re-evaluates
   "can this event matter at all?".  The plan precomputes the query's
   *relevant type set* (event types that can bind any pattern element
   or trip any negation guard); an :class:`EventClassifier` fed by the
   splitter classifies each event **once at ingestion**, and every
   window skips irrelevant events with one list index — in O(1),
   without calling the detector, without allocating a ``Feedback``.

Skip-till-next-match semantics make type-level skipping safe: an event
that no positive element and no guard atom can ever bind neither
extends, creates, nor kills a partial match — processing it is always a
no-op.  Prefiltering is automatically disabled (``relevant_types is
None``) when any atom accepts *any* type (``etype=None``, e.g. every
parsed DEFINE symbol), because then no event is provably irrelevant.

Compilation is per *query*, not per window: one :class:`QueryPlan` is
built by :func:`~repro.patterns.query.make_query` and shared by every
detector instance the query ever creates.

The ``compile=False`` escape hatch (or ``REPRO_COMPILE=0`` in the
environment) keeps the interpreted predicates — the kernels then simply
delegate to :meth:`Atom.matches` and prefiltering is off — which is what
the differential test suite and the interpreted CI leg run against.

Missing attributes (documented choice)
--------------------------------------
A comparison whose operand is missing — an unbound symbol reference,
an event lacking the referenced attribute, or an attribute carrying
``None`` (a JSON null) — evaluates to **False** (a clean non-match)
instead of raising.  This matches SQL's NULL comparison semantics, and
it is what keeps one malformed event from killing a long-running
session.  Note the consequence for negation: ``NOT (x > 5)`` on an
event without ``x`` is *True* (the inner comparison is false, its
negation matches).
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Callable, Mapping, Optional

from repro.events.event import Event
from repro.patterns.ast import (
    Atom,
    KleenePlus,
    Negation,
    PatternElement,
    SetPattern,
    Sequence,
    atoms_of,
)
from repro.patterns.predicates import MISSING

Matcher = Callable[[Event, Mapping[str, Any]], bool]

# element kind codes (table dispatch in the NFA partial match)
KIND_ATOM = 0
KIND_KLEENE = 1
KIND_SET = 2

# shared empty bindings for first-element probes (never mutated)
_EMPTY_BINDINGS: Mapping[str, Any] = {}


def compile_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the compile flag: explicit argument wins, then the
    ``REPRO_COMPILE`` environment variable (the CI escape hatch),
    default on."""
    if override is not None:
        return override
    value = os.environ.get("REPRO_COMPILE", "1").strip().lower()
    return value not in ("0", "false", "no", "off")


# ---------------------------------------------------------------------------
# pattern normalization (split positives from negation guards)
# ---------------------------------------------------------------------------


class CompiledPattern:
    """A Sequence split into positive elements and negation guards."""

    __slots__ = ("positives", "guards")

    def __init__(self, positives: tuple[PatternElement, ...],
                 guards: tuple[tuple[Atom, ...], ...]) -> None:
        self.positives = positives
        self.guards = guards

    @property
    def mandatory_total(self) -> int:
        return sum(element.mandatory_count() for element in self.positives)


def compile_pattern(pattern: PatternElement) -> CompiledPattern:
    """Normalize any AST node into a :class:`CompiledPattern`."""
    if not isinstance(pattern, Sequence):
        pattern = Sequence((pattern,))
    positives: list[PatternElement] = []
    guards: list[list[Atom]] = []
    pending_negations: list[Atom] = []
    for element in pattern.elements:
        if isinstance(element, Negation):
            pending_negations.append(element.atom)
            continue
        positives.append(element)
        guards.append(list(pending_negations))
        pending_negations = []
    if pending_negations:
        raise ValueError("trailing Negation has no following element")
    return CompiledPattern(tuple(positives),
                           tuple(tuple(g) for g in guards))


# ---------------------------------------------------------------------------
# predicate spec → generated kernel
# ---------------------------------------------------------------------------
#
# Structured predicates (the combinators in repro.patterns.predicates and
# the parser's DEFINE condition nodes) carry a small declarative spec on
# the closure they return:
#
#   ("const", bool)
#   ("cmp", operand, op, operand)     op in < <= > >= == !=
#   ("between", attr, low, high)      strict low < value < high
#   ("and", (spec, ...)) / ("or", (spec, ...)) / ("not", spec)
#
# with operands
#
#   ("attr", name)            attribute of the event under test
#   ("bound", symbol, attr)   attribute of an earlier-bound atom
#                             (Kleene bindings use the most recent event)
#   ("lit", value)            literal / constant-folded parameter
#
# The emitter below turns one spec (plus the atom's etype constraint)
# into a single generated function, preserving the interpreted
# evaluation semantics exactly: short-circuit AND/OR, missing operand →
# comparison false.


def predicate_spec(predicate: Callable) -> Optional[tuple]:
    """The declarative spec a structured predicate carries, else None."""
    return getattr(predicate, "_kernel_spec", None)


class _Emitter:
    """Generates the body of one fused kernel function."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.namespace: dict[str, Any] = {"_M": MISSING}
        self._temps = 0

    def const(self, value: Any) -> str:
        name = f"_c{len(self.namespace)}"
        self.namespace[name] = value
        return name

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- operands ----------------------------------------------------------

    def operand(self, side: tuple, indent: int) -> tuple[str, bool]:
        """Emit operand evaluation; return (expression, may_be_missing).

        Absent attributes and ``None`` values both surface as the
        ``_M`` sentinel — a null participates in no comparison.
        """
        tag = side[0]
        if tag == "lit":
            return self.const(side[1]), False
        if tag == "attr":
            var = self.temp()
            self.line(indent,
                      f"{var} = _a.get({self.const(side[1])}, _M)")
            self.line(indent, f"if {var} is None:")
            self.line(indent + 1, f"{var} = _M")
            return var, True
        assert tag == "bound"
        _, symbol, attr = side
        var = self.temp()
        self.line(indent, f"{var} = bindings.get({self.const(symbol)})")
        self.line(indent, f"if {var} is None:")
        self.line(indent + 1, f"{var} = _M")
        self.line(indent, "else:")
        self.line(indent + 1, f"if {var}.__class__ is list:")
        self.line(indent + 2, f"{var} = {var}[-1]")
        self.line(indent + 1,
                  f"{var} = {var}.attributes.get({self.const(attr)}, _M)")
        self.line(indent + 1, f"if {var} is None:")
        self.line(indent + 2, f"{var} = _M")
        return var, True

    # -- condition nodes ---------------------------------------------------

    def emit(self, spec: tuple, target: str, indent: int) -> None:
        """Emit statements assigning the spec's truth value to `target`."""
        tag = spec[0]
        if tag == "const":
            self.line(indent, f"{target} = {bool(spec[1])}")
        elif tag == "cmp":
            _, lhs, op, rhs = spec
            if (lhs[0] == "lit" and lhs[1] is None) or \
                    (rhs[0] == "lit" and rhs[1] is None):
                self.line(indent, f"{target} = False")  # null never matches
                return
            left, left_opt = self.operand(lhs, indent)
            right, right_opt = self.operand(rhs, indent)
            checks = []
            if left_opt:
                checks.append(f"{left} is not _M")
            if right_opt:
                checks.append(f"{right} is not _M")
            checks.append(f"({left} {op} {right})")
            self.line(indent, f"{target} = " + " and ".join(checks))
        elif tag == "between":
            _, attr, low, high = spec
            var = self.temp()
            self.line(indent, f"{var} = _a.get({self.const(attr)}, _M)")
            self.line(indent,
                      f"{target} = {var} is not _M and {var} is not None "
                      f"and ({self.const(low)} < {var} < "
                      f"{self.const(high)})")
        elif tag == "not":
            self.emit(spec[1], target, indent)
            self.line(indent, f"{target} = not {target}")
        elif tag == "and":
            parts = spec[1]
            self.emit(parts[0], target, indent)
            for part in parts[1:]:
                self.line(indent, f"if {target}:")
                indent += 1
                self.emit(part, target, indent)
        elif tag == "or":
            parts = spec[1]
            self.emit(parts[0], target, indent)
            for part in parts[1:]:
                self.line(indent, f"if not {target}:")
                indent += 1
                self.emit(part, target, indent)
        else:  # unknown node: structured predicates never produce this
            raise ValueError(f"unknown predicate spec node: {tag!r}")


# ---------------------------------------------------------------------------
# kernel interning
# ---------------------------------------------------------------------------
#
# The multi-query hub wants to recognize "these two queries evaluate the
# same predicate" without comparing ASTs at fan-out time.  Interning makes
# that an identity/int comparison:
#
# * The generated *source* already separates shape from parameters — the
#   emitter names constants ``_cN`` positionally and keeps their values in
#   the exec namespace, so two specs with the same structure but different
#   literals produce byte-identical source.  One compiled code object is
#   cached per shape (``_CODE_CACHE``) and re-executed with each param
#   vector.
# * One *matcher instance* is cached per ``(spec, etype)`` equivalence
#   class (``_MATCHER_CACHE``): the spec tuples are canonical (parsers and
#   combinators constant-fold params into ``("lit", v)`` leaves), so tuple
#   equality is predicate equivalence.  Every interned matcher carries a
#   process-unique ``kernel_id`` int and a ``binding_free`` flag (no
#   ``("bound", ...)`` operand — its result depends only on the event, so
#   the hub may memoize it per event across queries and windows).
#
# Specs with unhashable literals fall back to a private (non-interned)
# kernel that still carries a fresh ``kernel_id`` — sharing simply never
# triggers for it.


_KERNEL_IDS = itertools.count(1)
_INTERN_LOCK = threading.Lock()
_CODE_CACHE: dict[str, Any] = {}
_MATCHER_CACHE: dict[tuple, Matcher] = {}


def spec_is_binding_free(spec: tuple) -> bool:
    """Does the spec reference no earlier-bound symbols?"""
    tag = spec[0]
    if tag in ("const", "between"):
        return True
    if tag == "cmp":
        return spec[1][0] != "bound" and spec[3][0] != "bound"
    if tag == "not":
        return spec_is_binding_free(spec[1])
    if tag in ("and", "or"):
        return all(spec_is_binding_free(part) for part in spec[1])
    return False


def _stamp(kernel: Matcher, spec: tuple, etype: Optional[str]) -> Matcher:
    kernel.kernel_id = next(_KERNEL_IDS)  # type: ignore[attr-defined]
    kernel.binding_free = spec_is_binding_free(spec)  # type: ignore[attr-defined]
    kernel.spec = spec  # type: ignore[attr-defined]
    kernel.etype = etype  # type: ignore[attr-defined]
    return kernel


def _build_spec_matcher(spec: tuple, etype: Optional[str]) -> Matcher:
    """Generate one fused ``(event, bindings) -> bool`` kernel."""
    if spec[0] == "const":
        constant = bool(spec[1])
        if etype is None:
            return (lambda event, bindings: constant) if constant else \
                (lambda event, bindings: False)
        if not constant:
            return lambda event, bindings: False

        def type_only(event: Event, bindings: Mapping[str, Any],
                      _et: str = etype) -> bool:
            return event.etype == _et

        return type_only

    emitter = _Emitter()
    emitter.line(0, "def _kernel(event, bindings):")
    if etype is not None:
        emitter.line(1, f"if event.etype != {emitter.const(etype)}:")
        emitter.line(2, "return False")
    emitter.line(1, "_a = event.attributes")
    emitter.emit(spec, "_r", 1)
    emitter.line(1, "return _r")
    source = "\n".join(emitter.lines)
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<repro-kernel>", "exec")
        _CODE_CACHE[source] = code
    namespace = dict(emitter.namespace)
    exec(code, namespace)  # noqa: S102 - building the kernel is the point
    kernel = namespace["_kernel"]
    kernel.__kernel_source__ = source
    return kernel


def compile_spec_matcher(spec: tuple,
                         etype: Optional[str]) -> Matcher:
    """The interned kernel for ``(spec, etype)``.

    Identical specs across queries return the *same* function object, so
    plan equivalence checks reduce to comparing ``kernel_id`` ints.
    """
    try:
        key = (spec, etype)
        with _INTERN_LOCK:
            kernel = _MATCHER_CACHE.get(key)
            if kernel is None:
                kernel = _stamp(_build_spec_matcher(spec, etype), spec, etype)
                _MATCHER_CACHE[key] = kernel
        return kernel
    except TypeError:  # unhashable literal somewhere in the spec
        return _stamp(_build_spec_matcher(spec, etype), spec, etype)


def intern_stats() -> dict:
    """Size of the intern tables (observability/debugging)."""
    with _INTERN_LOCK:
        return {"shapes": len(_CODE_CACHE), "kernels": len(_MATCHER_CACHE)}


def compile_atom_matcher(atom: Atom, compiled: bool = True) -> Matcher:
    """The atom's fused kernel, or its interpreted ``matches`` fallback.

    Falls back to :meth:`Atom.matches` when the predicate is an opaque
    callable (hand-written lambda) that carries no spec.  Only the
    compiled path yields interned kernels (with ``kernel_id``); the
    fallback is a plain bound method, which is what makes interpreted
    plans automatically unshareable at the hub level.
    """
    if compiled:
        spec = predicate_spec(atom.predicate)
        if spec is not None:
            return compile_spec_matcher(spec, atom.etype)
    return atom.matches


def kernel_id(matcher: Optional[Matcher]) -> Optional[int]:
    """The matcher's intern id, or ``None`` for non-interned matchers."""
    return getattr(matcher, "kernel_id", None)


# the shared "never matches" kernel (sentinel element of prefix plans)
NEVER_KERNEL: Matcher = compile_spec_matcher(("const", False), None)


# ---------------------------------------------------------------------------
# the query plan
# ---------------------------------------------------------------------------


class ElementKernel:
    """One positive pattern element, pre-classified for table dispatch."""

    __slots__ = ("kind", "name", "matcher", "members", "mandatory")

    def __init__(self, kind: int, name: str, matcher: Optional[Matcher],
                 members: tuple[tuple[str, Matcher], ...],
                 mandatory: int) -> None:
        self.kind = kind
        self.name = name
        self.matcher = matcher
        self.members = members
        self.mandatory = mandatory


class QueryPlan:
    """Everything the NFA detector needs, computed once per query.

    Attributes
    ----------
    elements:
        One :class:`ElementKernel` per positive pattern element.
    guards:
        ``guards[i]`` — fused matchers of the negation atoms active
        while position *i* is current.
    suffix_mandatory:
        ``suffix_mandatory[i]`` — total mandatory count of the elements
        *after* position ``i`` (precomputed δ suffix sums).
    relevant_types:
        Event types that can bind any element or trip any guard, or
        ``None`` when prefiltering is unsafe/disabled.
    compiled:
        False for the interpreted escape hatch (``compile=False``).
    """

    __slots__ = ("pattern", "elements", "guards", "suffix_mandatory",
                 "mandatory_total", "relevant_types", "compiled", "size",
                 "_first_matchers")

    def __init__(self, pattern: PatternElement,
                 elements: tuple[ElementKernel, ...],
                 guards: tuple[tuple[Matcher, ...], ...],
                 relevant_types: Optional[frozenset],
                 compiled: bool) -> None:
        self.pattern = pattern
        self.elements = elements
        self.guards = guards
        self.size = len(elements)
        suffix: list[int] = []
        total = 0
        for element in reversed(elements):
            suffix.append(total)
            total += element.mandatory
        suffix.reverse()
        self.suffix_mandatory = tuple(suffix)
        self.mandatory_total = total
        self.relevant_types = relevant_types
        self.compiled = compiled
        first = elements[0]
        if first.kind == KIND_SET:
            self._first_matchers = tuple(m for _n, m in first.members)
        else:
            self._first_matchers = (first.matcher,)

    def first_accepts(self, event: Event) -> bool:
        """Could ``event`` start a fresh match?  Replaces the old
        per-event probe ``NFAPartialMatch`` allocation: a fresh match
        absorbs ``event`` iff some first-element matcher accepts it
        under empty bindings."""
        for matcher in self._first_matchers:
            if matcher(event, _EMPTY_BINDINGS):
                return True
        return False


def _relevant_types(pattern: PatternElement) -> Optional[frozenset]:
    """The set of event types that can matter to this pattern.

    ``None`` (no prefiltering) as soon as one atom — positive *or*
    negation guard — accepts any type: then no event is provably
    irrelevant.
    """
    types: set[str] = set()
    for atom in atoms_of(pattern):
        if atom.etype is None:
            return None
        types.add(atom.etype)
    return frozenset(types)


def build_plan(pattern: PatternElement, *,
               compiled: Optional[bool] = None) -> QueryPlan:
    """Compile a pattern AST into a :class:`QueryPlan`."""
    compiled = compile_enabled(compiled)
    normalized = compile_pattern(pattern)
    elements: list[ElementKernel] = []
    for element in normalized.positives:
        if isinstance(element, Atom):
            elements.append(ElementKernel(
                KIND_ATOM, element.name,
                compile_atom_matcher(element, compiled), (),
                element.mandatory_count()))
        elif isinstance(element, KleenePlus):
            elements.append(ElementKernel(
                KIND_KLEENE, element.name,
                compile_atom_matcher(element.atom, compiled), (),
                element.mandatory_count()))
        else:
            assert isinstance(element, SetPattern)
            members = tuple((atom.name, compile_atom_matcher(atom, compiled))
                            for atom in element.atoms)
            elements.append(ElementKernel(
                KIND_SET, "", None, members, element.mandatory_count()))
    guards = tuple(
        tuple(compile_atom_matcher(atom, compiled) for atom in guard_atoms)
        for guard_atoms in normalized.guards)
    relevant = _relevant_types(pattern) if compiled else None
    return QueryPlan(pattern, tuple(elements), guards, relevant, compiled)


def compile_query(query) -> QueryPlan:
    """The query's :class:`QueryPlan` (built on demand for AST queries).

    Raises ``ValueError`` for UDF queries — hand-written detectors have
    no pattern AST to compile (they are already specialized code).
    """
    plan = getattr(query, "plan", None)
    if plan is not None:
        return plan
    pattern = getattr(query, "pattern", None)
    if pattern is None:
        raise ValueError(
            f"query {query.name!r} has no pattern AST to compile "
            f"(hand-written UDF detectors are already specialized)")
    return build_plan(pattern)


# ---------------------------------------------------------------------------
# stream-level prefiltering
# ---------------------------------------------------------------------------


class EventClassifier:
    """Per-stream relevance flags, computed once per event at ingestion.

    The splitter (which sees every event exactly once) feeds
    :meth:`ingest`; every window processing pass then answers "can this
    event matter?" with a single list index, shared across all
    overlapping windows.  Positions are global stream positions;
    :meth:`trim` mirrors :meth:`EventStream.trim` so unbounded sessions
    stay in bounded memory.
    """

    __slots__ = ("relevant_types", "_flags", "_offset")

    def __init__(self, relevant_types: frozenset, offset: int = 0) -> None:
        self.relevant_types = relevant_types
        self._flags: list[bool] = []
        self._offset = offset

    def ingest(self, event: Event) -> None:
        self._flags.append(event.etype in self.relevant_types)

    def relevant(self, position: int) -> bool:
        index = position - self._offset
        if index < 0:
            raise IndexError(
                f"position {position} was trimmed (classifier offset "
                f"{self._offset})")
        return self._flags[index]

    def flags(self, start: int, end: int) -> list[bool]:
        """Relevance flags for positions ``[start, end)`` — fetched once
        per window so the per-event check is a bare ``zip`` step."""
        low = start - self._offset
        if low < 0:
            raise IndexError(
                f"position {start} was trimmed (classifier offset "
                f"{self._offset})")
        return self._flags[low:end - self._offset]

    def trim(self, upto_pos: int) -> int:
        """Drop flags below global position ``upto_pos``."""
        drop = min(upto_pos - self._offset, len(self._flags))
        if drop <= 0:
            return 0
        del self._flags[:drop]
        self._offset += drop
        return drop

    @property
    def retained(self) -> int:
        return len(self._flags)


def classifier_for(query) -> Optional[EventClassifier]:
    """A fresh classifier for the query's plan, or ``None`` when the
    query has no plan (UDF detector) or prefiltering is disabled."""
    plan = getattr(query, "plan", None)
    if plan is None or plan.relevant_types is None:
        return None
    return EventClassifier(plan.relevant_types)
