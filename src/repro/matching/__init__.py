"""Pattern matching: detector protocol, query→kernel compilation and the
generic NFA detector."""

from repro.matching.base import Completion, Detector, Feedback, PartialMatch
from repro.matching.kernel import (
    CompiledPattern,
    EventClassifier,
    QueryPlan,
    build_plan,
    classifier_for,
    compile_atom_matcher,
    compile_enabled,
    compile_pattern,
    compile_query,
)
from repro.matching.nfa import NFADetector

__all__ = [
    "Detector",
    "Feedback",
    "Completion",
    "PartialMatch",
    "NFADetector",
    "CompiledPattern",
    "compile_pattern",
    "QueryPlan",
    "build_plan",
    "compile_query",
    "compile_atom_matcher",
    "compile_enabled",
    "EventClassifier",
    "classifier_for",
]
