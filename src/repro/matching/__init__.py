"""Pattern matching: detector protocol and the generic NFA detector."""

from repro.matching.base import Completion, Detector, Feedback, PartialMatch
from repro.matching.nfa import CompiledPattern, NFADetector, compile_pattern

__all__ = [
    "Detector",
    "Feedback",
    "Completion",
    "PartialMatch",
    "NFADetector",
    "CompiledPattern",
    "compile_pattern",
]
