"""Generic automaton-based detector for AST patterns.

This detector compiles a :class:`~repro.patterns.ast.Sequence` into a
position-indexed automaton and runs it with *skip-till-next-match*
semantics: events that cannot advance a partial match are skipped silently;
only negation guards can kill a match mid-window.

The same compiled automaton is used in two roles:

* inside SPECTRE as a drop-in generic detector for arbitrary queries, and
* as the core of the T-REX baseline (``repro.trex``), which — like the
  original T-REX — "automatically translates queries into state machines"
  instead of hand-optimised UDFs (Sec. 4.2.3).

The automaton runs off a :class:`~repro.matching.kernel.QueryPlan`:
every pattern element carries an int *kind code* (table dispatch instead
of per-step ``isinstance``) and a matcher that is either a fused
generated kernel (``compile=True``, the default) or the interpreted
``Atom.matches`` (the ``compile=False`` escape hatch).  The detector
itself is on an allocation diet: events that provably change nothing
return one shared empty ``Feedback``, nothing copies the active-match
list unless a removal actually happens, and match creation is decided by
the plan's first-element check instead of a probe ``NFAPartialMatch``.

Semantics notes (documented choices where the paper is silent):

* A satisfied ``KleenePlus`` prefers *progress*: if an event matches both
  the Kleene atom and the next element, the next element wins.
* A trailing ``KleenePlus`` matches minimally (completes on its first
  binding).
* A negation guard placed before element *i* is active from the moment
  element *i-1* is satisfied until element *i* receives its first binding.
* When a completion consumes events, every other partial match containing
  a consumed event is abandoned (an event belongs to at most one pattern
  instance).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback, PartialMatch
from repro.matching.kernel import (
    KIND_ATOM,
    KIND_KLEENE,
    KIND_SET,
    CompiledPattern,
    QueryPlan,
    build_plan,
    compile_pattern,
)
from repro.patterns.ast import PatternElement
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy

__all__ = [
    "CompiledPattern",
    "compile_pattern",
    "DeriveFn",
    "NFADetector",
    "NFAPartialMatch",
]

DeriveFn = Callable[[Mapping[str, Any]], Mapping[str, Any]]

# Shared "nothing happened" feedback (never mutated — every mutation
# site in this module allocates a fresh Feedback first).  Skip-till-
# next-match means the overwhelming majority of process() calls change
# nothing; returning this singleton removes one allocation per event
# per overlapping window.
_EMPTY_FEEDBACK = Feedback()


class NFAPartialMatch(PartialMatch):
    """Mutable run of the automaton (one candidate pattern instance)."""

    __slots__ = ("match_id", "pos", "bindings", "bound_order", "_plan",
                 "_policy")

    def __init__(self, match_id: int, plan: QueryPlan,
                 policy: ConsumptionPolicy) -> None:
        self.match_id = match_id
        self.pos = 0
        self.bindings: dict[str, Any] = {}
        self.bound_order: list[tuple[str, Event]] = []
        self._plan = plan
        self._policy = policy

    # -- element-local helpers ------------------------------------------

    def _satisfied(self, index: int) -> bool:
        element = self._plan.elements[index]
        kind = element.kind
        if kind == KIND_ATOM:
            return element.name in self.bindings
        if kind == KIND_KLEENE:
            return bool(self.bindings.get(element.name))
        bindings = self.bindings
        return all(name in bindings for name, _m in element.members)

    def _bind(self, index: int, event: Event) -> bool:
        """Try to bind ``event`` into the element at ``index``."""
        element = self._plan.elements[index]
        kind = element.kind
        bindings = self.bindings
        if kind == KIND_ATOM:
            name = element.name
            if name not in bindings and element.matcher(event, bindings):
                bindings[name] = event
                self.bound_order.append((name, event))
                return True
            return False
        if kind == KIND_KLEENE:
            if element.matcher(event, bindings):
                name = element.name
                bindings.setdefault(name, []).append(event)
                self.bound_order.append((name, event))
                return True
            return False
        for name, matcher in element.members:
            if name not in bindings and matcher(event, bindings):
                bindings[name] = event
                self.bound_order.append((name, event))
                return True
        return False

    def _normalize(self) -> None:
        """Advance ``pos`` past satisfied non-Kleene elements.

        A satisfied Kleene element stays current so that it can keep
        absorbing events, except when it is the last element (minimal
        match — completion is checked by the detector right after).
        """
        plan = self._plan
        size = plan.size
        while self.pos < size and self._satisfied(self.pos):
            if plan.elements[self.pos].kind == KIND_KLEENE and \
                    self.pos < size - 1:
                break
            self.pos += 1

    # -- stepping --------------------------------------------------------

    def violates_guard(self, event: Event) -> bool:
        """Does ``event`` trigger an active negation guard?"""
        plan = self._plan
        if self.pos >= plan.size:
            return False
        guards = plan.guards[self.pos]
        if not guards:
            return False
        if self._satisfied(self.pos):
            return False  # guard expires once the element has a binding
        bindings = self.bindings
        for matcher in guards:
            if matcher(event, bindings):
                return True
        return False

    def step(self, event: Event) -> bool:
        """Feed one event; return ``True`` if the match absorbed it."""
        plan = self._plan
        pos = self.pos
        if pos >= plan.size:
            return False  # already complete
        if plan.elements[pos].kind == KIND_KLEENE and \
                pos + 1 < plan.size and self._satisfied(pos):
            # prefer progress over absorption
            if self._bind(pos + 1, event):
                self.pos = pos + 1
                self._normalize()
                return True
        if self._bind(pos, event):
            self._normalize()
            return True
        return False

    @property
    def is_complete(self) -> bool:
        plan = self._plan
        pos = self.pos
        if pos >= plan.size:
            return True
        return (pos == plan.size - 1
                and plan.elements[pos].kind == KIND_KLEENE
                and self._satisfied(pos))

    # -- PartialMatch interface ------------------------------------------

    @property
    def delta(self) -> int:
        """Events still required: unmet share of the current element plus
        all mandatory counts of later elements (precomputed suffix)."""
        plan = self._plan
        pos = self.pos
        if pos >= plan.size:
            return 0
        element = plan.elements[pos]
        if element.kind == KIND_SET:
            bindings = self.bindings
            remaining = sum(1 for name, _m in element.members
                            if name not in bindings)
        else:
            remaining = 0 if self._satisfied(pos) else 1
        return remaining + plan.suffix_mandatory[pos]

    @property
    def consumable(self) -> list[Event]:
        return [event for name, event in self.bound_order
                if self._policy.consumes(name)]

    @property
    def constituents(self) -> tuple[Event, ...]:
        return tuple(event for _name, event in self.bound_order)

    def contains_any(self, events: set[int]) -> bool:
        """Does the match bind any event whose seq is in ``events``?"""
        return any(event.seq in events for _n, event in self.bound_order)


class NFADetector(Detector):
    """Automaton detector for one window version.

    Parameters
    ----------
    pattern:
        The pattern AST (any element; wrapped into a Sequence).
    selection, consumption:
        Policies; see :mod:`repro.patterns.policies`.
    max_matches:
        Stop after this many completions per window (``None`` = no limit).
        The paper's evaluation queries detect the *first* match per window.
    anchor:
        If given, matches may only be created by this exact event (the
        window's start event).  Used by ``FROM <predicate>`` windows whose
        opening event is the first pattern constituent — if a predecessor
        window consumed the anchor, the window can never match.
    derive:
        Optional callable computing the complex event's payload from the
        completed bindings.
    plan:
        A precompiled :class:`~repro.matching.kernel.QueryPlan`; queries
        pass their shared plan here so every window reuses one
        compilation.  Built on the fly from ``pattern`` when omitted
        (``compile`` then selects fused kernels vs the interpreted
        escape hatch).
    """

    def __init__(self, pattern: PatternElement,
                 selection: SelectionPolicy = SelectionPolicy.FIRST,
                 consumption: ConsumptionPolicy | None = None,
                 max_matches: Optional[int] = 1,
                 anchor: Optional[Event] = None,
                 derive: Optional[DeriveFn] = None,
                 plan: Optional[QueryPlan] = None,
                 compile: Optional[bool] = None) -> None:
        self._plan = plan if plan is not None else \
            build_plan(pattern, compiled=compile)
        self._selection = selection
        self._policy = consumption or ConsumptionPolicy.none()
        self._max_matches = max_matches
        self._anchor = anchor
        self._derive = derive
        self._active: list[NFAPartialMatch] = []
        self._next_match_id = 0
        self._completions = 0
        self._closed = False

    @property
    def plan(self) -> QueryPlan:
        return self._plan

    @property
    def delta_max(self) -> int:
        return self._plan.mandatory_total

    @property
    def done(self) -> bool:
        if self._closed:
            return True
        if self._max_matches is None:
            return False
        return self._completions >= self._max_matches and not self._active

    # -- helpers ----------------------------------------------------------

    def _may_create(self, event: Event) -> bool:
        if self._anchor is not None and event.seq != self._anchor.seq:
            return False
        if self._selection is SelectionPolicy.FIRST and self._active:
            return False
        return self._plan.first_accepts(event)

    def _create_match(self, event: Event, feedback: Feedback) -> None:
        match = NFAPartialMatch(self._next_match_id, self._plan,
                                self._policy)
        self._next_match_id += 1
        absorbed = match.step(event)
        assert absorbed, "first_accepts succeeded but binding failed"
        self._active.append(match)
        feedback.created.append(match)
        if self._policy.consumes(match.bound_order[0][0]):
            feedback.added.append((match, event))

    def _complete(self, match: NFAPartialMatch, feedback: Feedback) -> None:
        constituents = match.constituents
        consumed = tuple(match.consumable)
        attributes = dict(self._derive(match.bindings)) if self._derive else {}
        feedback.completed.append(Completion(
            match=match, constituents=constituents, consumed=consumed,
            attributes=attributes))
        self._completions += 1
        self._active.remove(match)
        if consumed:
            consumed_seqs = {event.seq for event in consumed}
            for other in list(self._active):
                if other.contains_any(consumed_seqs):
                    self._active.remove(other)
                    feedback.abandoned.append(other)
        if self._max_matches is not None and \
                self._completions >= self._max_matches:
            # selection budget exhausted: nothing further may match
            for leftover in self._active:
                feedback.abandoned.append(leftover)
            self._active = []

    # -- Detector interface -----------------------------------------------

    def process(self, event: Event) -> Feedback:
        """Process one event.

        Returns the module-shared empty feedback when the event provably
        changed nothing (the common case under skip-till-next-match);
        callers must treat feedback objects as read-only.
        """
        if self._closed:
            raise RuntimeError("detector already closed")
        if self.done:
            return _EMPTY_FEEDBACK
        relevant = self._plan.relevant_types
        if relevant is not None and event.etype not in relevant:
            return _EMPTY_FEEDBACK  # type-level skip: O(1), no allocation

        feedback: Optional[Feedback] = None
        active = self._active
        if active:
            # 1. negation guards (collect first; copy nothing when clean)
            doomed: Optional[list[NFAPartialMatch]] = None
            for match in active:
                if match.violates_guard(event):
                    if doomed is None:
                        doomed = []
                    doomed.append(match)
            if doomed:
                feedback = Feedback()
                for match in doomed:
                    active.remove(match)
                    feedback.abandoned.append(match)

            # 2. LAST selection: a fresher candidate replaces an
            #    un-started match's initial binding.
            if self._selection is SelectionPolicy.LAST and active:
                feedback = self._rebind_last(event, feedback)

            # 3. extend active matches
            if self._selection is SelectionPolicy.EACH:
                for match in list(active):
                    if match not in active:
                        continue  # abandoned by an earlier completion
                    if feedback is None:
                        feedback = self._extend(match, event, None)
                    else:
                        self._extend(match, event, feedback)
                    if self.done:
                        return feedback or _EMPTY_FEEDBACK
            else:
                # one extension per event is enough outside EACH; any
                # mutation (completion) is followed by the break, so
                # iterating the live list is safe
                for match in active:
                    before = len(match.bound_order)
                    if match.step(event):
                        if feedback is None:
                            feedback = Feedback()
                        self._note_step(match, event, before, feedback)
                        if self.done:
                            return feedback
                        break

        # 4. create a new match where selection allows
        if self._may_create(event):
            if feedback is None:
                feedback = Feedback()
            self._create_match(event, feedback)
            newest = self._active[-1]
            if newest.is_complete:  # single-element patterns
                self._complete(newest, feedback)
        return feedback if feedback is not None else _EMPTY_FEEDBACK

    def _extend(self, match: NFAPartialMatch, event: Event,
                feedback: Optional[Feedback]) -> Optional[Feedback]:
        before = len(match.bound_order)
        if match.step(event):
            if feedback is None:
                feedback = Feedback()
            self._note_step(match, event, before, feedback)
        return feedback

    def _note_step(self, match: NFAPartialMatch, event: Event,
                   before: int, feedback: Feedback) -> None:
        if len(match.bound_order) > before:
            name, _event = match.bound_order[-1]
            if self._policy.consumes(name):
                feedback.added.append((match, event))
        if match.is_complete:
            self._complete(match, feedback)

    def _rebind_last(self, event: Event,
                     feedback: Optional[Feedback]) -> Optional[Feedback]:
        """LAST selection: drop an initial-position match if the new event
        could start a fresh one (the later candidate is preferred)."""
        if not self._plan.first_accepts(event):
            return feedback
        doomed: Optional[list[NFAPartialMatch]] = None
        for match in self._active:
            if len(match.bound_order) == 1 and not match.is_complete:
                if doomed is None:
                    doomed = []
                doomed.append(match)
        if doomed:
            if feedback is None:
                feedback = Feedback()
            for match in doomed:
                self._active.remove(match)
                feedback.abandoned.append(match)
        return feedback

    def close(self) -> Feedback:
        if self._closed:
            return _EMPTY_FEEDBACK
        self._closed = True
        if not self._active:
            return _EMPTY_FEEDBACK
        feedback = Feedback()
        feedback.abandoned.extend(self._active)
        self._active = []
        return feedback
