"""Generic automaton-based detector for AST patterns.

This detector compiles a :class:`~repro.patterns.ast.Sequence` into a
position-indexed automaton and runs it with *skip-till-next-match*
semantics: events that cannot advance a partial match are skipped silently;
only negation guards can kill a match mid-window.

The same compiled automaton is used in two roles:

* inside SPECTRE as a drop-in generic detector for arbitrary queries, and
* as the core of the T-REX baseline (``repro.trex``), which — like the
  original T-REX — "automatically translates queries into state machines"
  instead of hand-optimised UDFs (Sec. 4.2.3).

Semantics notes (documented choices where the paper is silent):

* A satisfied ``KleenePlus`` prefers *progress*: if an event matches both
  the Kleene atom and the next element, the next element wins.
* A trailing ``KleenePlus`` matches minimally (completes on its first
  binding).
* A negation guard placed before element *i* is active from the moment
  element *i-1* is satisfied until element *i* receives its first binding.
* When a completion consumes events, every other partial match containing
  a consumed event is abandoned (an event belongs to at most one pattern
  instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence as Seq

from repro.events.event import Event
from repro.matching.base import Completion, Detector, Feedback, PartialMatch
from repro.patterns.ast import (
    Atom,
    KleenePlus,
    Negation,
    PatternElement,
    SetPattern,
    Sequence,
)
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy

DeriveFn = Callable[[Mapping[str, Any]], Mapping[str, Any]]


@dataclass(frozen=True)
class CompiledPattern:
    """A Sequence split into positive elements and negation guards."""

    positives: tuple[PatternElement, ...]
    # guards[i] = negation atoms active while position i is current
    guards: tuple[tuple[Atom, ...], ...]

    @property
    def mandatory_total(self) -> int:
        return sum(element.mandatory_count() for element in self.positives)


def compile_pattern(pattern: PatternElement) -> CompiledPattern:
    """Normalize any AST node into a :class:`CompiledPattern`."""
    if not isinstance(pattern, Sequence):
        pattern = Sequence((pattern,))
    positives: list[PatternElement] = []
    guards: list[list[Atom]] = []
    pending_negations: list[Atom] = []
    for element in pattern.elements:
        if isinstance(element, Negation):
            pending_negations.append(element.atom)
            continue
        positives.append(element)
        guards.append(list(pending_negations))
        pending_negations = []
    if pending_negations:
        raise ValueError("trailing Negation has no following element")
    return CompiledPattern(tuple(positives), tuple(tuple(g) for g in guards))


class NFAPartialMatch(PartialMatch):
    """Mutable run of the automaton (one candidate pattern instance)."""

    __slots__ = ("match_id", "pos", "bindings", "bound_order", "_compiled",
                 "_policy")

    def __init__(self, match_id: int, compiled: CompiledPattern,
                 policy: ConsumptionPolicy) -> None:
        self.match_id = match_id
        self.pos = 0
        self.bindings: dict[str, Any] = {}
        self.bound_order: list[tuple[str, Event]] = []
        self._compiled = compiled
        self._policy = policy

    # -- element-local helpers ------------------------------------------

    def _satisfied(self, index: int) -> bool:
        element = self._compiled.positives[index]
        if isinstance(element, Atom):
            return element.name in self.bindings
        if isinstance(element, KleenePlus):
            return bool(self.bindings.get(element.name))
        assert isinstance(element, SetPattern)
        return all(atom.name in self.bindings for atom in element.atoms)

    def _bind(self, element: PatternElement, event: Event) -> bool:
        """Try to bind ``event`` into ``element``; return success."""
        if isinstance(element, Atom):
            if element.name not in self.bindings and \
                    element.matches(event, self.bindings):
                self.bindings[element.name] = event
                self.bound_order.append((element.name, event))
                return True
            return False
        if isinstance(element, KleenePlus):
            if element.atom.matches(event, self.bindings):
                self.bindings.setdefault(element.name, []).append(event)
                self.bound_order.append((element.name, event))
                return True
            return False
        assert isinstance(element, SetPattern)
        for atom in element.atoms:
            if atom.name not in self.bindings and \
                    atom.matches(event, self.bindings):
                self.bindings[atom.name] = event
                self.bound_order.append((atom.name, event))
                return True
        return False

    def _normalize(self) -> None:
        """Advance ``pos`` past satisfied non-Kleene elements.

        A satisfied Kleene element stays current so that it can keep
        absorbing events, except when it is the last element (minimal
        match — completion is checked by the detector right after).
        """
        positives = self._compiled.positives
        while self.pos < len(positives) and self._satisfied(self.pos):
            if isinstance(positives[self.pos], KleenePlus) and \
                    self.pos < len(positives) - 1:
                break
            self.pos += 1

    # -- stepping --------------------------------------------------------

    def violates_guard(self, event: Event) -> bool:
        """Does ``event`` trigger an active negation guard?"""
        if self.pos >= len(self._compiled.guards):
            return False
        if self._satisfied(self.pos):
            return False  # guard expires once the element has a binding
        return any(atom.matches(event, self.bindings)
                   for atom in self._compiled.guards[self.pos])

    def step(self, event: Event) -> bool:
        """Feed one event; return ``True`` if the match absorbed it."""
        positives = self._compiled.positives
        if self.pos >= len(positives):
            return False  # already complete
        current = positives[self.pos]
        in_satisfied_kleene = (isinstance(current, KleenePlus)
                               and self._satisfied(self.pos))
        if in_satisfied_kleene and self.pos + 1 < len(positives):
            # prefer progress over absorption
            if self._bind(positives[self.pos + 1], event):
                self.pos += 1
                self._normalize()
                return True
        if self._bind(current, event):
            self._normalize()
            return True
        return False

    @property
    def is_complete(self) -> bool:
        positives = self._compiled.positives
        if self.pos >= len(positives):
            return True
        return (self.pos == len(positives) - 1
                and isinstance(positives[self.pos], KleenePlus)
                and self._satisfied(self.pos))

    # -- PartialMatch interface ------------------------------------------

    @property
    def delta(self) -> int:
        """Events still required: unmet share of the current element plus
        all mandatory counts of later elements."""
        positives = self._compiled.positives
        if self.pos >= len(positives):
            return 0
        current = positives[self.pos]
        if isinstance(current, Atom):
            remaining = 0 if self._satisfied(self.pos) else 1
        elif isinstance(current, KleenePlus):
            remaining = 0 if self._satisfied(self.pos) else 1
        else:
            assert isinstance(current, SetPattern)
            remaining = sum(1 for atom in current.atoms
                            if atom.name not in self.bindings)
        remaining += sum(positives[i].mandatory_count()
                         for i in range(self.pos + 1, len(positives)))
        return remaining

    @property
    def consumable(self) -> list[Event]:
        return [event for name, event in self.bound_order
                if self._policy.consumes(name)]

    @property
    def constituents(self) -> tuple[Event, ...]:
        return tuple(event for _name, event in self.bound_order)

    def contains_any(self, events: set[int]) -> bool:
        """Does the match bind any event whose seq is in ``events``?"""
        return any(event.seq in events for _n, event in self.bound_order)


class NFADetector(Detector):
    """Automaton detector for one window version.

    Parameters
    ----------
    pattern:
        The pattern AST (any element; wrapped into a Sequence).
    selection, consumption:
        Policies; see :mod:`repro.patterns.policies`.
    max_matches:
        Stop after this many completions per window (``None`` = no limit).
        The paper's evaluation queries detect the *first* match per window.
    anchor:
        If given, matches may only be created by this exact event (the
        window's start event).  Used by ``FROM <predicate>`` windows whose
        opening event is the first pattern constituent — if a predecessor
        window consumed the anchor, the window can never match.
    derive:
        Optional callable computing the complex event's payload from the
        completed bindings.
    """

    def __init__(self, pattern: PatternElement,
                 selection: SelectionPolicy = SelectionPolicy.FIRST,
                 consumption: ConsumptionPolicy | None = None,
                 max_matches: Optional[int] = 1,
                 anchor: Optional[Event] = None,
                 derive: Optional[DeriveFn] = None) -> None:
        self._compiled = compile_pattern(pattern)
        self._selection = selection
        self._policy = consumption or ConsumptionPolicy.none()
        self._max_matches = max_matches
        self._anchor = anchor
        self._derive = derive
        self._active: list[NFAPartialMatch] = []
        self._next_match_id = 0
        self._completions = 0
        self._closed = False

    @property
    def delta_max(self) -> int:
        return self._compiled.mandatory_total

    @property
    def done(self) -> bool:
        if self._closed:
            return True
        if self._max_matches is None:
            return False
        return self._completions >= self._max_matches and not self._active

    # -- helpers ----------------------------------------------------------

    def _may_create(self, event: Event) -> bool:
        if self._anchor is not None and event.seq != self._anchor.seq:
            return False
        if self._selection is SelectionPolicy.FIRST and self._active:
            return False
        probe = NFAPartialMatch(-1, self._compiled, self._policy)
        return probe.step(event)

    def _create_match(self, event: Event, feedback: Feedback) -> None:
        match = NFAPartialMatch(self._next_match_id, self._compiled,
                                self._policy)
        self._next_match_id += 1
        absorbed = match.step(event)
        assert absorbed, "creation probe succeeded but binding failed"
        self._active.append(match)
        feedback.created.append(match)
        if self._policy.consumes(match.bound_order[0][0]):
            feedback.added.append((match, event))

    def _complete(self, match: NFAPartialMatch, feedback: Feedback) -> None:
        constituents = match.constituents
        consumed = tuple(match.consumable)
        attributes = dict(self._derive(match.bindings)) if self._derive else {}
        feedback.completed.append(Completion(
            match=match, constituents=constituents, consumed=consumed,
            attributes=attributes))
        self._completions += 1
        self._active.remove(match)
        if consumed:
            consumed_seqs = {event.seq for event in consumed}
            for other in list(self._active):
                if other.contains_any(consumed_seqs):
                    self._active.remove(other)
                    feedback.abandoned.append(other)
        if self._max_matches is not None and \
                self._completions >= self._max_matches:
            # selection budget exhausted: nothing further may match
            for leftover in self._active:
                feedback.abandoned.append(leftover)
            self._active = []

    # -- Detector interface -----------------------------------------------

    def process(self, event: Event) -> Feedback:
        if self._closed:
            raise RuntimeError("detector already closed")
        feedback = Feedback()
        if self.done:
            return feedback

        # 1. negation guards
        for match in list(self._active):
            if match.violates_guard(event):
                self._active.remove(match)
                feedback.abandoned.append(match)

        # 2. LAST selection: a fresher candidate replaces an un-started
        #    match's initial binding.
        if self._selection is SelectionPolicy.LAST:
            self._rebind_last(event, feedback)

        # 3. extend active matches
        for match in list(self._active):
            if match not in self._active:
                continue  # abandoned by an earlier completion this event
            before = len(match.bound_order)
            if match.step(event):
                if len(match.bound_order) > before:
                    name, _event = match.bound_order[-1]
                    if self._policy.consumes(name):
                        feedback.added.append((match, event))
                if match.is_complete:
                    self._complete(match, feedback)
                    if self.done:
                        return feedback
                if self._selection is not SelectionPolicy.EACH:
                    break  # one extension per event is enough outside EACH

        # 4. create a new match where selection allows
        if self._may_create(event):
            self._create_match(event, feedback)
            newest = self._active[-1]
            if newest.is_complete:  # single-element patterns
                self._complete(newest, feedback)
        return feedback

    def _rebind_last(self, event: Event, feedback: Feedback) -> None:
        """LAST selection: drop an initial-position match if the new event
        could start a fresh one (the later candidate is preferred)."""
        fresh_possible = NFAPartialMatch(-1, self._compiled, self._policy)
        if not fresh_possible.step(event):
            return
        for match in list(self._active):
            if len(match.bound_order) == 1 and not match.is_complete:
                self._active.remove(match)
                feedback.abandoned.append(match)

    def close(self) -> Feedback:
        feedback = Feedback()
        if not self._closed:
            feedback.abandoned.extend(self._active)
            self._active = []
            self._closed = True
        return feedback
