"""WebSocket transport: RFC 6455 on raw asyncio streams, stdlib-only.

One protocol message (see :mod:`repro.server.protocol`) rides in one
*text* frame — no newline framing needed on this transport.  The
module implements the full server side (handshake validation, masked
client frames, fragmentation reassembly, ping/pong, close handshake)
plus the client side used by ``python -m repro client --transport ws``,
the tests, and the load harness.

Only what the serving runtime needs is here — this is not a general
WebSocket library: extensions/subprotocols are not negotiated (their
header fields are ignored), and binary data frames are accepted and
treated as UTF-8 JSON like text frames.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
from typing import Optional

from repro.server.http import (
    HTTPRequest,
    http_response,
    read_http_request,
)
from repro.server.core import Connection, ServerCore
from repro.server.protocol import MAX_FRAME_BYTES, ProtocolError

__all__ = ["WS_GUID", "accept_key", "mask_payload", "encode_ws_frame",
           "read_ws_frame", "client_handshake", "WSServer"]

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT, OP_TEXT, OP_BINARY = 0x0, 0x1, 0x2
OP_CLOSE, OP_PING, OP_PONG = 0x8, 0x9, 0xA
_DATA_OPS = (OP_CONT, OP_TEXT, OP_BINARY)


class WSProtocolError(ProtocolError):
    """A WebSocket framing violation (close code 1002 territory)."""

    def __init__(self, message: str) -> None:
        super().__init__("protocol", message)


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a ``Sec-WebSocket-Key`` (RFC 6455
    §4.2.2: base64 of the SHA-1 of key + GUID)."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("ascii")


def mask_payload(data: bytes, key: bytes) -> bytes:
    """XOR-(un)mask a payload with the 4-byte key (§5.3).

    Implemented as one big-int XOR instead of a per-byte loop — on a
    64 KiB frame that is ~40x faster in CPython, which matters on the
    push path of the load harness.
    """
    if not data:
        return data
    repeats = -(-len(data) // 4)
    mask = (key * repeats)[:len(data)]
    return (int.from_bytes(data, "little")
            ^ int.from_bytes(mask, "little")).to_bytes(len(data), "little")


def encode_ws_frame(opcode: int, payload: bytes,
                    mask: bool = False) -> bytes:
    """One unfragmented frame (FIN set).  Clients must set ``mask``."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask:
        key = os.urandom(4)
        return bytes(head) + key + mask_payload(payload, key)
    return bytes(head) + payload


async def read_ws_frame(reader: asyncio.StreamReader,
                        max_size: int = MAX_FRAME_BYTES,
                        require_mask: bool = True
                        ) -> tuple[bool, int, bytes]:
    """Read one frame → ``(fin, opcode, unmasked payload)``.

    ``require_mask`` enforces §5.1 (client frames MUST be masked) on
    the server side; the client side passes ``False`` (server frames
    MUST NOT be masked — a masked one is rejected there instead).
    """
    head = await reader.readexactly(2)
    fin = bool(head[0] & 0x80)
    if head[0] & 0x70:
        raise WSProtocolError("RSV bits set without a negotiated "
                              "extension")
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if opcode not in _DATA_OPS:
        if opcode not in (OP_CLOSE, OP_PING, OP_PONG):
            raise WSProtocolError(f"unknown opcode {opcode:#x}")
        if not fin or length > 125:
            raise WSProtocolError("fragmented or oversized control "
                                  "frame")
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > max_size:
        raise ProtocolError(
            "too_large", f"frame of {length} bytes exceeds the "
                         f"{max_size}-byte limit")
    if masked != require_mask:
        side = "client" if require_mask else "server"
        raise WSProtocolError(f"{side} frames must be "
                              f"{'masked' if require_mask else 'unmasked'}")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = mask_payload(payload, key)
    return fin, opcode, payload


async def read_ws_message(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          max_size: int = MAX_FRAME_BYTES,
                          require_mask: bool = True) -> Optional[bytes]:
    """Read one *data message*, reassembling fragments and answering
    control frames inline (ping → pong; close → close echo + ``None``).
    Returns ``None`` when the peer initiated a close or hung up.
    """
    parts: list[bytes] = []
    total = 0
    while True:
        try:
            fin, opcode, payload = await read_ws_frame(
                reader, max_size, require_mask)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        if opcode == OP_PING:
            writer.write(encode_ws_frame(OP_PONG, payload,
                                         mask=not require_mask))
            await writer.drain()
            continue
        if opcode == OP_PONG:
            continue
        if opcode == OP_CLOSE:
            try:
                writer.write(encode_ws_frame(OP_CLOSE, payload[:2],
                                             mask=not require_mask))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return None
        if opcode == OP_CONT and not parts:
            raise WSProtocolError("continuation frame without a "
                                  "preceding data frame")
        if opcode != OP_CONT and parts:
            raise WSProtocolError("new data frame inside a fragmented "
                                  "message")
        total += len(payload)
        if total > max_size:
            raise ProtocolError(
                "too_large", f"fragmented message exceeds the "
                             f"{max_size}-byte limit")
        parts.append(payload)
        if fin:
            return b"".join(parts)


# -- client side -----------------------------------------------------------

async def client_handshake(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           host: str, path: str = "/") -> None:
    """Perform the opening handshake on a fresh connection (client)."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (f"GET {path} HTTP/1.1\r\n"
               f"Host: {host}\r\n"
               f"Upgrade: websocket\r\n"
               f"Connection: Upgrade\r\n"
               f"Sec-WebSocket-Key: {key}\r\n"
               f"Sec-WebSocket-Version: 13\r\n\r\n")
    writer.write(request.encode("latin-1"))
    await writer.drain()
    status = await reader.readline()
    if b"101" not in status.split(b" ", 2)[1:2]:
        raise ConnectionError(
            f"websocket handshake refused: {status.decode().strip()!r}")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("sec-websocket-accept") != accept_key(key):
        raise ConnectionError("websocket handshake: bad accept key")


# -- server side -----------------------------------------------------------

def _handshake_response(request: HTTPRequest) -> bytes:
    if request.method != "GET":
        raise ValueError("websocket handshake must be a GET")
    if "websocket" not in request.header("upgrade").lower():
        raise ValueError("missing 'Upgrade: websocket'")
    connection = request.header("connection").lower()
    if "upgrade" not in connection:
        raise ValueError("missing 'Connection: Upgrade'")
    key = request.header("sec-websocket-key")
    if not key:
        raise ValueError("missing Sec-WebSocket-Key")
    if request.header("sec-websocket-version", "13") != "13":
        raise ValueError("unsupported Sec-WebSocket-Version")
    head = ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n")
    return head.encode("latin-1")


class WSConnection(Connection):
    """One accepted WebSocket client (post-handshake)."""

    transport = "ws"

    def __init__(self, core: ServerCore, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, peer: str) -> None:
        super().__init__(core, peer)
        self.reader = reader
        self.writer = writer

    async def recv(self) -> Optional[bytes]:
        return await read_ws_message(self.reader, self.writer,
                                     self.core.config.max_frame,
                                     require_mask=True)

    async def send_encoded(self, payload: bytes) -> None:
        # payload is an NDJSON line; the text frame carries it sans \n
        self.writer.write(encode_ws_frame(OP_TEXT, payload.rstrip(b"\n")))
        await self.writer.drain()

    async def close_transport(self) -> None:
        try:
            self.writer.write(encode_ws_frame(OP_CLOSE,
                                              (1001).to_bytes(2, "big")))
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass
        self.writer.close()


class WSServer:
    """The WebSocket listener: handshake, then the shared
    :class:`~repro.server.core.Connection` driver over WS frames."""

    def __init__(self, core: ServerCore, host: str, port: int) -> None:
        self.core = core
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port,
            limit=self.core.config.max_frame + 1024)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"ws:{peername[0]}:{peername[1]}" if peername else "ws:?"
        try:
            request = await read_http_request(reader)
            writer.write(_handshake_response(request))
            await writer.drain()
        except (ValueError, ConnectionError,
                asyncio.IncompleteReadError) as error:
            try:
                writer.write(http_response(400, f"{error}\n"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        try:
            await WSConnection(self.core, reader, writer, peer).run()
        except asyncio.CancelledError:
            # loop shutdown cancelled the handler mid-teardown; end
            # quietly — 3.11's streams callback logs cancelled tasks
            writer.close()
