"""The newline-delimited JSON wire protocol (version 1).

Every message is one JSON object on one line (UTF-8, ``\\n``
terminated on the TCP transport; one WebSocket text frame on the WS
transport).  Every frame carries a ``"type"``; requests may carry a
client-chosen ``"id"`` which the server echoes in the matching ``ack``
or ``error`` frame.

Request frames (client → server)
--------------------------------
==============  ========================================================
``hello``       First frame on every connection: ``version`` (must be
                :data:`PROTOCOL_VERSION`), optional ``token`` (auth),
                optional ``client`` label.  Acked with the assigned
                ``client_id``.
``subscribe``   ``query`` (MATCH-RECOGNIZE text), optional ``name``,
                ``engine``, ``params`` mapping, ``watermarks`` flag.
                Acked with the subscription name; ``match`` frames for
                it stream until ``unsubscribe``/flush/disconnect.
``unsubscribe`` ``subscription`` name.  Trailing windows flush first
                (their matches still arrive), then a final
                ``watermark`` frame, then the ack.
``push``        One ``event`` object; unacked unless ``ack: true``.
``push_many``   ``events`` list; acked with ``count``/``accepted``
                (they differ when per-client rate limiting sheds).
``flush``       End-of-stream barrier: trailing windows of every
                subscription emit, then the hub accepts no more events.
``stats``       Snapshot request; answered with a ``stats`` frame.
``ping``        Liveness probe; acked (``op: "ping"``).
``pong``        Reply to a server ``ping``; refreshes the client's
                liveness clock, no response.
==============  ========================================================

Response frames (server → client)
---------------------------------
==============  ========================================================
``ack``         ``op`` names the acked request; echoes ``id``; may
                carry op-specific fields (``client_id``,
                ``subscription``, ``count``, ``accepted``, ...).
``match``       One complex event: ``subscription``, ``query``,
                ``window``, ``seqs``, ``etypes``, ``attributes``.
``error``       ``code`` (see :data:`ERROR_CODES`) + ``message``;
                echoes ``id`` when the offending request carried one.
``watermark``   ``subscription`` + ``watermark``; ``final: true`` marks
                the subscription's last frame (flush/unsubscribe).
``stats``       ``hub`` (the :meth:`HubStats.to_dict` snapshot) +
                ``server`` (clients/subscriptions/uptime counters).
``goodbye``     Graceful shutdown notice (``reason``: ``"shutdown"``,
                ``"idle_timeout"``, ``"slow_consumer"``, ...); the
                server closes the connection after sending it.
``ping``        Server-side liveness probe (``--heartbeat``); clients
                answer with a ``pong`` request.  :class:`ServerClient`
                replies automatically and never surfaces the frame.
==============  ========================================================

The codec is *typed*: :func:`validate_request` checks every field
against the :data:`REQUEST_FIELDS` table before a frame reaches the
core, and :func:`decode_frame` enforces the per-message size limit, so
transport handlers never see malformed payloads.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.events.wire import (
    WireError,
    event_to_wire,
    match_from_wire,
    match_to_wire,
)
from repro.events.wire import event_from_wire as _event_from_wire

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "event_to_wire",
    "event_from_wire",
    "match_to_wire",
    "match_from_wire",
    "ack_frame",
    "error_frame",
    "match_frame",
    "match_frame_wire",
    "watermark_frame",
    "goodbye_frame",
    "ping_frame",
    "stats_frame",
]

PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 1 << 20  # per-message cap on both transports

# error codes the server emits; clients can switch on these
ERROR_CODES = (
    "protocol",      # malformed frame / field type / unknown type
    "too_large",     # frame over the size limit
    "version",       # hello version mismatch
    "unauthorized",  # missing/bad token, or pre-hello traffic
    "busy",          # max_clients reached / draining
    "bad_query",     # subscribe query failed to parse/build
    "limit",         # per-client subscription cap
    "rate_limited",  # push refused under policy="raise"
    "closed",        # hub already flushed/closed (post-flush push)
    "unknown",       # unknown subscription name, internal failures
)


class ProtocolError(ValueError):
    """A frame violated the wire protocol (carries an error code)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


# -- framing ---------------------------------------------------------------

def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One frame → one UTF-8 JSON line (compact separators).

    Non-JSON-native leaves (e.g. derived match attributes holding
    tuples of seqs) degrade to their ``str()`` — the wire never fails
    on exotic payloads, it stringifies them.
    """
    return (json.dumps(frame, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def decode_frame(data: bytes | str,
                 max_bytes: int = MAX_FRAME_BYTES) -> dict:
    """One wire message → a frame dict, size- and shape-checked."""
    if len(data) > max_bytes:
        raise ProtocolError(
            "too_large", f"frame of {len(data)} bytes exceeds the "
                         f"{max_bytes}-byte limit")
    try:
        frame = json.loads(data)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError("protocol",
                            f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("protocol", "frame must be a JSON object")
    if not isinstance(frame.get("type"), str):
        raise ProtocolError("protocol", "frame needs a string 'type'")
    return frame


# -- typed request validation ---------------------------------------------

_ID_TYPES = (str, int)

# type -> {field: (types, required)}
REQUEST_FIELDS: dict[str, dict[str, tuple[tuple, bool]]] = {
    "hello": {"version": ((int,), False), "token": ((str,), False),
              "client": ((str,), False)},
    "subscribe": {"query": ((str,), True), "name": ((str,), False),
                  "engine": ((str,), False), "params": ((dict,), False),
                  "watermarks": ((bool,), False),
                  # durability: a durable subscription survives its
                  # client (and server restarts under --wal); the
                  # server acks it with the current match cursor and
                  # ``resume_from`` replays the missed suffix
                  "durable": ((bool,), False),
                  "resume_from": ((int,), False)},
    "unsubscribe": {"subscription": ((str,), True)},
    "push": {"event": ((dict,), True), "ack": ((bool,), False)},
    "push_many": {"events": ((list,), True)},
    "flush": {},
    "stats": {},
    "ping": {},
    "pong": {},
}


def validate_request(frame: dict) -> str:
    """Check ``frame`` against :data:`REQUEST_FIELDS`; return its type.

    Raises :class:`ProtocolError` on unknown types, missing required
    fields, or wrong field types — transports turn that into one
    ``error`` frame without the core ever seeing the request.
    """
    rtype = frame["type"]
    spec = REQUEST_FIELDS.get(rtype)
    if spec is None:
        raise ProtocolError("protocol", f"unknown request type {rtype!r}")
    rid = frame.get("id")
    if rid is not None and not isinstance(rid, _ID_TYPES):
        raise ProtocolError("protocol", "'id' must be a string or int")
    for field, (types, required) in spec.items():
        value = frame.get(field)
        if value is None:
            if required:
                raise ProtocolError(
                    "protocol", f"{rtype!r} requires field {field!r}")
            continue
        if not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            raise ProtocolError(
                "protocol",
                f"{rtype!r} field {field!r} must be {expected}, "
                f"got {type(value).__name__}")
    return rtype


# -- event / match codec ---------------------------------------------------
# The codecs live in repro.events.wire (shared with the WAL and the run
# recorder); this module re-exports them and maps decode failures onto
# the protocol's error-code taxonomy.

def event_from_wire(obj: Mapping[str, Any],
                    default_seq: Optional[int] = None) -> Event:
    """A pushed ``event`` object → :class:`Event`.

    ``seq`` may be omitted (the server assigns the next global
    sequence number via ``default_seq``); ``timestamp`` defaults to
    ``float(seq)`` mirroring :func:`repro.events.event.make_event`.
    """
    try:
        return _event_from_wire(obj, default_seq)
    except WireError as error:
        raise ProtocolError("protocol", str(error)) from None


# -- response builders -----------------------------------------------------

def _with_id(frame: dict, rid) -> dict:
    if rid is not None:
        frame["id"] = rid
    return frame


def ack_frame(op: str, rid=None, **extra) -> dict:
    frame = {"type": "ack", "op": op, **extra}
    return _with_id(frame, rid)


def error_frame(code: str, message: str, rid=None) -> dict:
    return _with_id({"type": "error", "code": code, "message": message},
                    rid)


def match_frame(subscription: str, match: ComplexEvent,
                cursor: Optional[int] = None) -> dict:
    frame = {"type": "match", "subscription": subscription,
             "match": match_to_wire(match)}
    if cursor is not None:
        frame["cursor"] = cursor
    return frame


def match_frame_wire(subscription: str, wire: dict,
                     cursor: Optional[int] = None) -> dict:
    """A ``match`` frame from an already-encoded wire match (the resume
    path re-frames matches stored in the WAL without reconstructing
    :class:`ComplexEvent` objects); any extended-form embedded
    ``events`` are stripped to keep resumed frames shaped like live
    ones."""
    wire = {k: v for k, v in wire.items() if k != "events"}
    frame = {"type": "match", "subscription": subscription,
             "match": wire}
    if cursor is not None:
        frame["cursor"] = cursor
    return frame


def watermark_frame(subscription: str, watermark: float,
                    final: bool = False) -> dict:
    if watermark in (float("-inf"), float("inf")) or \
            watermark != watermark:
        watermark = None  # JSON has no infinities; None = "none yet"
    frame = {"type": "watermark", "subscription": subscription,
             "watermark": watermark}
    if final:
        frame["final"] = True
    return frame


def goodbye_frame(reason: str) -> dict:
    return {"type": "goodbye", "reason": reason}


def ping_frame() -> dict:
    """Server → client liveness probe (the heartbeat loop)."""
    return {"type": "ping"}


def stats_frame(hub: dict, server: dict, rid=None) -> dict:
    return _with_id({"type": "stats", "hub": hub, "server": server}, rid)
