"""Asyncio client for the serving runtime (both transports).

:class:`ServerClient` speaks the version-1 wire protocol over TCP
(NDJSON) or WebSocket and is what ``python -m repro client``, the test
suite, and the load harness share:

.. code-block:: python

    async with ServerClient.connect("127.0.0.1", 7711) as client:
        await client.hello(token="s3cr3t")
        sub = await client.subscribe(QUERY_TEXT, watermarks=True)
        await client.push_many(events)
        await client.flush()
        async for frame in client.frames():
            if frame["type"] == "match":
                ...
            elif frame.get("final"):       # final watermark
                break

Request/response pairing uses the protocol's ``id`` echo: every
request carries a fresh id and :meth:`request` waits for the matching
``ack``/``error``, parking any ``match``/``watermark`` frames that
arrive in between on the streaming queue — so pushing and tailing can
interleave on one connection.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, AsyncIterator, Mapping, Optional

from repro.events.event import Event
from repro.server import ws as wslib
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    event_to_wire,
)

__all__ = ["ServerError", "ServerClient", "ReconnectingClient"]


class ServerError(RuntimeError):
    """The server answered a request with an ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServerClient:
    """One protocol connection (``transport`` = ``"tcp"`` | ``"ws"``)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 transport: str = "tcp") -> None:
        self.reader = reader
        self.writer = writer
        self.transport = transport
        self.client_id: Optional[str] = None
        self.closed = False
        #: True once the connection has really ended (EOF / reset / a
        #: protocol failure in the read loop) — lets callers tell a
        #: dead connection apart from a ``next_frame`` timeout.
        self.ended = False
        self._ids = itertools.count(1)
        self._pending: dict[Any, asyncio.Future] = {}
        self._stream: asyncio.Queue = asyncio.Queue()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # -- connection --------------------------------------------------------

    @classmethod
    async def connect(cls, host: str, port: int,
                      transport: str = "tcp") -> "ServerClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 1024)
        if transport == "ws":
            await wslib.client_handshake(reader, writer,
                                         f"{host}:{port}")
        elif transport != "tcp":
            raise ValueError(f"unknown transport {transport!r}")
        return cls(reader, writer, transport)

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServerClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- wire I/O ----------------------------------------------------------

    async def _send(self, frame: Mapping[str, Any]) -> None:
        payload = encode_frame(frame)
        if self.transport == "ws":
            self.writer.write(wslib.encode_ws_frame(
                wslib.OP_TEXT, payload.rstrip(b"\n"), mask=True))
        else:
            self.writer.write(payload)
        await self.writer.drain()

    async def _recv_raw(self) -> Optional[bytes]:
        if self.transport == "ws":
            return await wslib.read_ws_message(
                self.reader, self.writer, require_mask=False)
        line = await self.reader.readline()
        return line if line else None

    async def _read_loop(self) -> None:
        """Demultiplex inbound frames: acks/errors resolve their
        pending request future, everything else (matches, watermarks,
        goodbyes, unsolicited errors) streams to :meth:`frames`."""
        try:
            while True:
                raw = await self._recv_raw()
                if raw is None:
                    break
                frame = decode_frame(raw)
                rid = frame.get("id")
                if frame.get("type") == "ping" and rid is None:
                    # server heartbeat: answer right here so liveness
                    # never depends on the consumer draining frames
                    await self._send({"type": "pong"})
                    continue
                if rid is not None and rid in self._pending:
                    self._pending.pop(rid).set_result(frame)
                else:
                    await self._stream.put(frame)
        except (ConnectionError, OSError, ProtocolError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self.ended = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection"))
            self._pending.clear()
            await self._stream.put(None)

    # -- requests ----------------------------------------------------------

    async def request(self, frame: dict) -> dict:
        """Send one request and await its ``ack`` (or raise the
        matching ``error`` as :class:`ServerError`)."""
        rid = next(self._ids)
        frame["id"] = rid
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[rid] = future
        await self._send(frame)
        response = await future
        if response["type"] == "error":
            raise ServerError(response.get("code", "unknown"),
                              response.get("message", ""))
        return response

    async def hello(self, token: Optional[str] = None,
                    client: str = "") -> dict:
        frame: dict = {"type": "hello", "version": PROTOCOL_VERSION}
        if token is not None:
            frame["token"] = token
        if client:
            frame["client"] = client
        ack = await self.request(frame)
        self.client_id = ack.get("client_id")
        return ack

    async def subscribe(self, query: str, *,
                        name: Optional[str] = None,
                        engine: Optional[str] = None,
                        params: Optional[Mapping[str, Any]] = None,
                        watermarks: bool = False,
                        durable: bool = False,
                        resume_from: Optional[int] = None) -> str:
        """Subscribe a query; with ``durable=True`` (needs ``name``)
        the server keeps the attachment and its WAL-logged match
        cursor across disconnects and restarts — pass the last seen
        cursor as ``resume_from`` to replay the gap exactly once."""
        frame: dict = {"type": "subscribe", "query": query}
        if name:
            frame["name"] = name
        if engine:
            frame["engine"] = engine
        if params:
            frame["params"] = dict(params)
        if watermarks:
            frame["watermarks"] = True
        if durable:
            frame["durable"] = True
        if resume_from is not None:
            frame["resume_from"] = int(resume_from)
        ack = await self.request(frame)
        return ack["subscription"]

    async def subscribe_durable(self, query: str, *, name: str,
                                engine: Optional[str] = None,
                                params: Optional[Mapping[str, Any]] = None,
                                resume_from: Optional[int] = None,
                                watermarks: bool = False) -> dict:
        """Like :meth:`subscribe` with ``durable=True`` but returns the
        full ack (including the current durable ``cursor``)."""
        frame: dict = {"type": "subscribe", "query": query,
                       "name": name, "durable": True}
        if engine:
            frame["engine"] = engine
        if params:
            frame["params"] = dict(params)
        if watermarks:
            frame["watermarks"] = True
        if resume_from is not None:
            frame["resume_from"] = int(resume_from)
        return await self.request(frame)

    async def unsubscribe(self, subscription: str) -> dict:
        return await self.request({"type": "unsubscribe",
                                   "subscription": subscription})

    async def push(self, event: Event, ack: bool = False) -> None:
        frame: dict = {"type": "push", "event": event_to_wire(event)}
        if ack:
            frame["ack"] = True
            await self.request(frame)
        else:
            await self._send(frame)

    async def push_many(self, events: list[Event]) -> dict:
        return await self.request(
            {"type": "push_many",
             "events": [event_to_wire(event) for event in events]})

    async def push_raw(self, objs: list[dict]) -> dict:
        """Push pre-encoded event objects (the CLI's CSV path)."""
        return await self.request({"type": "push_many", "events": objs})

    async def flush(self) -> dict:
        return await self.request({"type": "flush"})

    async def stats(self) -> dict:
        return await self.request({"type": "stats"})

    async def ping(self) -> dict:
        return await self.request({"type": "ping"})

    # -- streaming ---------------------------------------------------------

    async def next_frame(self,
                         timeout: Optional[float] = None
                         ) -> Optional[dict]:
        """One streamed frame (match/watermark/goodbye/...), ``None``
        on connection end or timeout."""
        try:
            if timeout is None:
                return await self._stream.get()
            return await asyncio.wait_for(self._stream.get(), timeout)
        except asyncio.TimeoutError:
            return None

    async def frames(self) -> AsyncIterator[dict]:
        """Iterate streamed frames until the connection ends."""
        while True:
            frame = await self.next_frame()
            if frame is None:
                return
            yield frame


class ReconnectingClient:
    """A self-healing tail over :class:`ServerClient`.

    Wraps one durable-subscription consumer and survives server
    restarts: when the connection dies unexpectedly it reconnects on a
    :class:`~repro.resilience.backoff.Backoff` schedule, replays the
    ``hello`` and every registered durable subscription, and resumes
    each one from the last match cursor it delivered — so the stream
    seen through :meth:`next_frame` is gapless and duplicate-free
    across any number of server deaths (``python -m repro client
    --reconnect`` and the chaos suite both ride on this).

    Only *durable* subscriptions are re-established; plain ones have no
    cursor to resume from, so a reconnecting consumer must subscribe
    with ``durable=True``.
    """

    def __init__(self, host: str, port: int, *,
                 transport: str = "tcp",
                 token: Optional[str] = None,
                 client: str = "",
                 backoff: Optional["Backoff"] = None,
                 on_reconnect=None) -> None:
        from repro.resilience.backoff import Backoff
        self.host = host
        self.port = port
        self.transport = transport
        self._token = token
        self._label = client
        self._backoff = backoff if backoff is not None else Backoff()
        self._on_reconnect = on_reconnect
        self.client: Optional[ServerClient] = None
        self.closed = False
        self.gave_up = False
        self.reconnects = 0
        # name -> subscribe kwargs, name -> last delivered cursor
        self._durable: dict[str, dict] = {}
        self._cursors: dict[str, int] = {}

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      transport: str = "tcp",
                      token: Optional[str] = None,
                      client: str = "",
                      backoff: Optional["Backoff"] = None,
                      on_reconnect=None) -> "ReconnectingClient":
        self = cls(host, port, transport=transport, token=token,
                   client=client, backoff=backoff,
                   on_reconnect=on_reconnect)
        self.client = await ServerClient.connect(host, port, transport)
        await self.client.hello(token=token, client=client)
        return self

    async def close(self) -> None:
        self.closed = True
        if self.client is not None:
            await self.client.close()

    async def __aenter__(self) -> "ReconnectingClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def ended(self) -> bool:
        """True once no more frames will ever arrive (closed, or the
        retry budget ran out)."""
        return self.closed or self.gave_up

    def cursor(self, name: str) -> int:
        """Last durable cursor delivered for subscription ``name``."""
        return self._cursors.get(name, 0)

    async def subscribe_durable(self, query: str, *, name: str,
                                engine: Optional[str] = None,
                                params: Optional[Mapping[str, Any]] = None,
                                resume_from: Optional[int] = None,
                                watermarks: bool = False) -> dict:
        """Durable subscribe, remembered for automatic re-subscribe.

        Without ``resume_from`` the tail starts at the server's current
        cursor (the ack's ``cursor``); either way the wrapper tracks
        every delivered match cursor so a reconnect resumes exactly
        where the stream broke.
        """
        spec = {"query": query, "engine": engine,
                "params": dict(params) if params else None,
                "watermarks": watermarks}
        ack = await self.client.subscribe_durable(
            query, name=name, engine=engine, params=params,
            resume_from=resume_from, watermarks=watermarks)
        self._durable[name] = spec
        self._cursors[name] = (resume_from if resume_from is not None
                               else int(ack.get("cursor") or 0))
        return ack

    # pushes are NOT retried — they are not idempotent (a batch that
    # died mid-flight may be partially ingested); only the durable
    # *consuming* side is safe to replay, so these just delegate
    async def push_many(self, events: list[Event]) -> dict:
        return await self.client.push_many(events)

    async def push_raw(self, objs: list[dict]) -> dict:
        return await self.client.push_raw(objs)

    async def flush(self) -> dict:
        return await self.client.flush()

    async def stats(self) -> dict:
        return await self.client.stats()

    async def next_frame(self,
                         timeout: Optional[float] = None
                         ) -> Optional[dict]:
        """Like :meth:`ServerClient.next_frame`, but a dead connection
        triggers reconnect-and-resume instead of returning ``None``.
        ``None`` still means *timeout* (connection alive) or a final
        give-up (``ended`` is then True)."""
        while True:
            frame = await self.client.next_frame(timeout)
            if frame is not None:
                if frame.get("type") == "match":
                    cursor = frame.get("cursor")
                    if cursor is not None:
                        self._cursors[frame.get("subscription")] = cursor
                return frame
            if self.closed or not self.client.ended:
                return None  # deliberate close, or just a timeout
            if not await self._reconnect():
                return None

    async def frames(self) -> AsyncIterator[dict]:
        """Iterate frames across reconnects until close/give-up."""
        while True:
            frame = await self.next_frame()
            if frame is None:
                return
            yield frame

    async def _reconnect(self) -> bool:
        if self.client is not None:
            await self.client.close()
        while not self.closed:
            try:
                delay = self._backoff.next_delay()
            except StopIteration:
                break
            await asyncio.sleep(delay)
            if self.closed:
                break
            try:
                client = await ServerClient.connect(
                    self.host, self.port, self.transport)
            except (ConnectionError, OSError):
                continue  # server still down
            try:
                await client.hello(token=self._token, client=self._label)
                for name, spec in self._durable.items():
                    await client.subscribe_durable(
                        spec["query"], name=name, engine=spec["engine"],
                        params=spec["params"],
                        resume_from=self._cursors.get(name, 0),
                        watermarks=spec["watermarks"])
            except (ConnectionError, OSError, ServerError,
                    ProtocolError, asyncio.IncompleteReadError):
                # up but not ready (draining, WAL still recovering...)
                await client.close()
                continue
            self.client = client
            self.reconnects += 1
            self._backoff.reset()
            if self._on_reconnect is not None:
                self._on_reconnect(self)
            return True
        self.gave_up = True
        return False
