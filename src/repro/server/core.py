"""The serving core shared by every transport.

One :class:`ServerCore` owns one
:class:`~repro.hub.aio.AsyncStreamHub` and maps each connection —
TCP or WebSocket, they differ only in framing — to a
:class:`ClientSession`:

* **authentication** is a pluggable token check applied at ``hello``
  and *enforced* by an ``on_attach`` middleware on the hub
  (:class:`AuthAttachMiddleware`): an unauthenticated client cannot
  subscribe no matter which code path tries, because the refusal lives
  on the interception chain, not in the handler;
* **per-client rate limiting** reuses
  :class:`~repro.middleware.ratelimit.RateLimitMiddleware` with a
  caller-supplied key function — one shared middleware instance,
  buckets keyed by client id, composed into a per-client
  ``on_push_many`` chain so each client's pushes spend that client's
  tokens only;
* **subscriptions** are per-client
  :class:`~repro.hub.aio.AsyncAttachment`\\ s named
  ``<client_id>/<name>``, each drained by a pump task that turns
  matches into ``match`` frames; disconnecting — gracefully or
  abruptly — detaches every one of them
  (:meth:`AsyncAttachment.abandon`), so the hub never leaks
  attachments or keeps a producer suspended on a dead client's queue;
* **graceful drain** (:meth:`ServerCore.shutdown`) flushes the hub via
  :meth:`AsyncStreamHub.aclose` — trailing windows emit, every pump
  delivers its remaining matches and a final ``watermark`` frame —
  then says ``goodbye`` on every connection.

The mechanism/policy split follows the PR-7 middleware design: the
core routes frames; auth, quotas, validation and metrics stack onto
the hub's interception chains.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.durability.manager import DurabilityManager
from repro.hub.aio import AsyncAttachment, AsyncStreamHub
from repro.hub.core import HubClosedError
from repro.middleware.base import (
    Middleware,
    MiddlewareContext,
    MiddlewareStack,
)
from repro.middleware.metrics import MetricsMiddleware
from repro.middleware.ratelimit import RateLimitExceeded, RateLimitMiddleware
from repro.resilience.chaos import ChaosMiddleware
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ack_frame,
    decode_frame,
    encode_frame,
    error_frame,
    event_from_wire,
    goodbye_frame,
    match_frame,
    match_frame_wire,
    ping_frame,
    stats_frame,
    validate_request,
    watermark_frame,
)

__all__ = ["ServerConfig", "ServerBusy", "AuthError",
           "AuthAttachMiddleware", "ClientSession", "ServerCore",
           "Connection", "DurableOutbox", "DurableSubscription"]

_CLOSE = object()  # outbox sentinel: sender task exits after this


class ServerBusy(RuntimeError):
    """The server refused a new connection (capacity or draining)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


class AuthError(RuntimeError):
    """An unauthenticated client reached a guarded operation."""


@dataclass
class ServerConfig:
    """Everything the serving runtime is configured with.

    ``token_check`` is the pluggable authentication hook: it receives
    the (possibly absent) token from ``hello`` and decides.  When it
    is ``None``, ``auth_token`` is compared verbatim; when both are
    ``None``, the server is open.
    """

    slack: float = 0.0
    engine: str = "sequential"
    auth_token: Optional[str] = None
    token_check: Optional[Callable[[Optional[str]], bool]] = None
    max_clients: int = 64
    max_subscriptions: int = 16      # per client
    client_rate: Optional[float] = None   # events/s per client (shed)
    client_burst: Optional[float] = None
    queue_size: int = 1024           # per-attachment match queue bound
    send_queue: int = 1024           # per-connection outbound frames
    max_frame: int = MAX_FRAME_BYTES
    share: Optional[bool] = None     # cross-query optimizer gate
    drain_timeout: float = 10.0      # seconds to wait for pumps on drain
    middleware: tuple = ()           # extra hub-level middleware
    wal_dir: Optional[str] = None    # durability: WAL + snapshot directory
    checkpoint_every: int = 10_000   # ingested events between checkpoints
    wal_fsync: str = "batch"         # "always" | "batch" | "never"
    keep_segments: Optional[int] = None  # WAL segment GC margin (None=all)
    # liveness: ping every heartbeat_interval seconds; reap clients
    # whose last inbound frame (pongs count) is idle_timeout old.
    # Enable the heartbeat at < idle_timeout or quiet-but-alive
    # clients get reaped with their subscriptions.
    heartbeat_interval: Optional[float] = None
    idle_timeout: Optional[float] = None
    # what to do when a client's outbox is full and a match/watermark
    # frame arrives: "block" the pump (today's behaviour), drop the
    # oldest queued frame, or disconnect with goodbye("slow_consumer")
    slow_consumer: str = "block"
    chaos: Optional[object] = None   # ChaosConfig — seeded fault injection

    def authorized(self, token: Optional[str]) -> bool:
        if self.token_check is not None:
            return bool(self.token_check(token))
        if self.auth_token is None:
            return True
        return token == self.auth_token


class AuthAttachMiddleware(Middleware):
    """Refuse hub attachment on behalf of unauthenticated clients.

    The core marks which client a ``hub.attach`` call is made for
    (single event loop, no await between mark and attach); any attach
    without an authenticated mark — or with none at all while the
    server requires tokens and the attach is client-scoped — raises
    before the attachment exists.  Server-side attachments (the CLI's
    pre-attached ``--query`` files) carry no client mark and pass.
    """

    def __init__(self, core: "ServerCore") -> None:
        self.core = core
        self.refused_total = 0

    def on_attach(self, context: MiddlewareContext, call_next):
        client = self.core._attaching_client
        if client is not None and not client.authenticated:
            self.refused_total += 1
            raise AuthError(
                f"client {client.client_id} is not authenticated")
        return call_next(context)


class Subscription:
    """One attachment + the pump task feeding its connection."""

    __slots__ = ("name", "attachment", "task", "watermarks",
                 "last_watermark", "matches_sent")

    durable = False

    def __init__(self, name: str, attachment: AsyncAttachment,
                 watermarks: bool) -> None:
        self.name = name
        self.attachment = attachment
        self.task: Optional[asyncio.Task] = None
        self.watermarks = watermarks
        self.last_watermark = float("-inf")
        self.matches_sent = 0


class DurableOutbox:
    """Sink of one durable attachment on the *inner* (sync, WAL-logged)
    hub.  The durability middleware assigns the match's cursor and
    appends the ``emit`` record just before sink dispatch, so reading
    ``manager.cursor(name)`` here yields exactly this match's cursor.

    At most one consumer at a time holds the outbox (its pump's
    asyncio queue); with none connected — or one too slow to keep up —
    matches are *not* parked: they are already durable in the WAL, and
    a resuming consumer replays the gap from there by cursor.
    """

    __slots__ = ("name", "manager", "queue", "attachment",
                 "delivered", "dropped")

    def __init__(self, name: str, manager: DurabilityManager) -> None:
        self.name = name
        self.manager = manager
        self.queue: Optional[asyncio.Queue] = None
        self.attachment = None       # the inner sync Attachment
        self.delivered = 0
        self.dropped = 0

    def __call__(self, match) -> None:
        queue = self.queue
        if queue is None:
            return
        cursor = self.manager.cursor(self.name)
        try:
            queue.put_nowait((cursor, match))
        except asyncio.QueueFull:
            # keep the newest: the consumer detects the cursor gap and
            # can re-resume from the WAL
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            queue.put_nowait((cursor, match))
            self.dropped += 1
        self.delivered += 1


class DurableSubscription:
    """One client's live hold on a durable attachment.

    Unlike :class:`Subscription`, the attachment is *not* torn down on
    disconnect — it survives on the inner hub (and in the WAL) and the
    next consumer resumes from its cursor.  ``unsubscribe`` detaches it
    for real.
    """

    __slots__ = ("name", "outbox", "task", "watermarks",
                 "last_watermark", "matches_sent", "resume_from",
                 "cursor_start", "last_cursor")

    durable = True

    def __init__(self, name: str, outbox: DurableOutbox,
                 watermarks: bool, resume_from: Optional[int],
                 cursor_start: int) -> None:
        self.name = name
        self.outbox = outbox
        self.task: Optional[asyncio.Task] = None
        self.watermarks = watermarks
        self.last_watermark = float("-inf")
        self.matches_sent = 0
        self.resume_from = resume_from
        self.cursor_start = cursor_start
        self.last_cursor = resume_from if resume_from is not None else \
            cursor_start


class ClientSession:
    """Server-side state of one connected client."""

    def __init__(self, core: "ServerCore", client_id: str, peer: str,
                 transport: str) -> None:
        self.core = core
        self.client_id = client_id
        self.peer = peer
        self.transport = transport
        self.greeted = False
        self.authenticated = False
        self.label = ""
        self.closed = False
        self.subscriptions: dict[str, Subscription] = {}
        self.outbox: asyncio.Queue = asyncio.Queue(
            maxsize=core.config.send_queue)
        self._sub_counter = 0
        # liveness clock: any inbound frame (pongs included) refreshes
        # it; the reaper compares it against idle_timeout
        self.last_recv = time.monotonic()
        self.last_ping = self.last_recv
        self.connection = None           # back-ref set by Connection.run
        # counters surfaced by the stats frame / metrics endpoint
        self.frames_in = 0
        self.frames_out = 0
        self.events_in = 0
        self.events_shed = 0
        self.matches_out = 0
        self.frames_dropped = 0
        # per-client ingestion chain: the shared rate limiter keyed by
        # this client's id (None when no client_rate is configured)
        self.push_chain = core._client_push_chain()

    async def send(self, frame: dict) -> None:
        """Queue one frame for the sender task.

        Control frames (acks, errors, goodbyes, pings) always use the
        bounded blocking put.  For stream frames (``match`` /
        ``watermark``) the configured slow-consumer policy decides what
        a full outbox means: ``block`` backpressures the pump (the
        default), ``drop_oldest`` evicts the oldest queued frame (a
        durable consumer re-resumes the gap by cursor), ``disconnect``
        sheds the client with a typed goodbye.
        """
        if self.closed:
            return
        policy = self.core.config.slow_consumer
        if policy == "block" or frame.get("type") not in ("match",
                                                          "watermark"):
            self.frames_out += 1
            await self.outbox.put(frame)
            return
        try:
            self.outbox.put_nowait(frame)
            self.frames_out += 1
            return
        except asyncio.QueueFull:
            pass
        if policy == "drop_oldest":
            try:
                self.outbox.get_nowait()
            except asyncio.QueueEmpty:
                pass
            self.frames_dropped += 1
            self.core.frames_dropped_total += 1
            try:
                self.outbox.put_nowait(frame)
                self.frames_out += 1
            except asyncio.QueueFull:
                self.frames_dropped += 1
                self.core.frames_dropped_total += 1
        else:  # "disconnect"
            self.core._shed_slow_consumer(self)

    async def end_outbox(self) -> None:
        """Let the sender task flush what is queued, then exit."""
        await self.outbox.put(_CLOSE)

    def next_subscription_name(self) -> str:
        self._sub_counter += 1
        return f"q{self._sub_counter}"


class ServerCore:
    """The hub-owning, transport-agnostic request handler."""

    def __init__(self, config: ServerConfig,
                 ratelimit: Optional[RateLimitMiddleware] = None) -> None:
        if config.slow_consumer not in ("block", "drop_oldest",
                                        "disconnect"):
            raise ValueError(
                f"slow_consumer must be 'block', 'drop_oldest' or "
                f"'disconnect', got {config.slow_consumer!r}")
        self.config = config
        self.metrics = MetricsMiddleware()
        self.auth = AuthAttachMiddleware(self)
        self.ratelimit = ratelimit
        if self.ratelimit is None and config.client_rate is not None:
            self.ratelimit = RateLimitMiddleware(
                config.client_rate, burst=config.client_burst,
                key=lambda ctx: ctx.name or "server")
        # seeded fault injection (the chaos suite's entry point): the
        # event faults ride the ingestion chain, connection resets are
        # consulted by the connection driver, WAL faults wrap the
        # segment writer — all from one ChaosConfig seed
        self.chaos: Optional[ChaosMiddleware] = None
        self.connection_chaos = None
        if config.chaos is not None:
            self.chaos = ChaosMiddleware(config.chaos)
            if config.chaos.reset_after is not None or \
                    config.chaos.reset_rate:
                self.connection_chaos = self.chaos.connection_chaos()
        self._next_seq = 0           # auto-assigned event sequence floor
        self.durability: Optional[DurabilityManager] = None
        self._durable_outboxes: dict[str, DurableOutbox] = {}
        inner_hub = None
        if config.wal_dir is not None:
            # client subscriptions default non-durable: only explicit
            # durable/<name> attachments are restored after a crash
            self.durability = DurabilityManager(
                config.wal_dir, checkpoint_every=config.checkpoint_every,
                fsync=config.wal_fsync, default_durable=False,
                keep_segments=config.keep_segments)
            self.durability.extra_provider = \
                lambda: {"next_seq": self._next_seq}
            if self.chaos is not None and config.chaos.wal_fail_rate:
                self.durability.wal_writer_wrapper = \
                    self.chaos.wrap_wal_writer
            inner_hub = self.durability.start(
                slack=config.slack, queue_size=config.queue_size,
                share=config.share, sink_provider=self._durable_sink,
                # chaos sits outside the durability middleware so the
                # WAL journals the post-fault stream (recovery parity)
                middleware=[self.chaos] if self.chaos is not None
                else ())
            self._next_seq = max(
                int(self.durability.recovered_extra.get("next_seq", 0)),
                self.durability.max_replayed_seq + 1)
        facade_middleware = [self.auth, self.metrics, *config.middleware]
        if self.chaos is not None and inner_hub is None:
            # no WAL: inject at the async facade instead (innermost, so
            # metrics still count the pre-fault stream)
            facade_middleware.append(self.chaos)
        self.hub = AsyncStreamHub(
            slack=config.slack, queue_size=config.queue_size,
            share=config.share, hub=inner_hub,
            middleware=facade_middleware)
        if self.durability is not None:
            # bind restored durable attachments to their outboxes (the
            # sink_provider ran before the attachment object existed)
            for attachment in self.hub._hub.attachments:
                outbox = self._durable_outboxes.get(attachment.name)
                if outbox is not None:
                    outbox.attachment = attachment
        self.clients: dict[str, ClientSession] = {}
        self.draining = False
        self.flushed = False
        self.started_monotonic = time.monotonic()
        self.clients_total = 0
        self.clients_rejected = 0
        self._next_client = 0
        self._attaching_client: Optional[ClientSession] = None
        # resilience counters + the lazily-started liveness loop
        self._liveness_task: Optional[asyncio.Task] = None
        self.heartbeats_sent = 0
        self.clients_reaped = 0
        self.slow_disconnects = 0
        self.frames_dropped_total = 0
        self.connections_reset_total = 0
        reg = self.metrics.registry
        self._gauge_clients = reg.gauge(
            "server_clients_connected", "Currently connected clients")
        self._gauge_subs = reg.gauge(
            "server_subscriptions", "Live subscriptions across clients")
        self._gauge_draining = reg.gauge(
            "server_draining", "1 while the shutdown drain is running")
        self._counter_clients = reg.counter(
            "server_clients_total", "Connections accepted")
        self._counter_frames_in = reg.counter(
            "server_frames_in_total", "Request frames handled")
        self._counter_frames_out = reg.counter(
            "server_frames_out_total", "Response frames queued")
        self._counter_matches = reg.counter(
            "server_matches_sent_total", "Match frames queued")

    def _durable_sink(self, record: dict):
        """Recovery hook: give each restored durable attachment a fresh
        outbox (no consumer yet; matches stay WAL-only until one
        resumes)."""
        outbox = DurableOutbox(record["name"], self.durability)
        self._durable_outboxes[record["name"]] = outbox
        return outbox

    # -- connection lifecycle ---------------------------------------------

    def connect(self, peer: str, transport: str) -> ClientSession:
        if self.draining:
            self.clients_rejected += 1
            raise ServerBusy("busy", "server is draining")
        if len(self.clients) >= self.config.max_clients:
            self.clients_rejected += 1
            raise ServerBusy(
                "busy", f"server is at max_clients="
                        f"{self.config.max_clients}")
        self._next_client += 1
        client_id = f"c{self._next_client}"
        session = ClientSession(self, client_id, peer, transport)
        self.clients[client_id] = session
        self.clients_total += 1
        self._counter_clients.inc()
        if self._liveness_task is None and (
                self.config.heartbeat_interval is not None
                or self.config.idle_timeout is not None):
            # started lazily so a core built outside a running loop
            # (tests, the stdin serve path) never needs one
            self._liveness_task = asyncio.ensure_future(
                self._liveness_loop())
        return session

    async def disconnect(self, session: ClientSession,
                         reason: str = "disconnect") -> None:
        """Tear one client down; safe on abrupt socket loss, idempotent.

        Pumps are cancelled first (they may be suspended mid-send),
        then every attachment is *abandoned* — queued matches dropped,
        any producer blocked on its full queue released, ``on_detach``
        run exactly once — so 100 connect/disconnect cycles leave the
        hub with exactly as many attachments as it started with.
        """
        if session.closed:
            return
        session.closed = True
        self.clients.pop(session.client_id, None)
        for sub in list(session.subscriptions.values()):
            if sub.task is not None:
                sub.task.cancel()
                try:
                    await sub.task
                except (asyncio.CancelledError, Exception):
                    pass
            if sub.durable:
                # the attachment outlives the consumer: unregister the
                # queue, keep matching (and WAL-logging) for the next
                # resume
                sub.outbox.queue = None
            else:
                await sub.attachment.abandon()
        session.subscriptions.clear()

    def _client_push_chain(self):
        if self.ratelimit is None:
            return None
        stack = MiddlewareStack([self.ratelimit])
        return stack.async_chain("on_push_many", self._ingest_terminal)

    # -- liveness: heartbeat + idle reaper ---------------------------------

    async def _liveness_loop(self) -> None:
        """Periodic sweep: ping sessions nearing their heartbeat due
        time, reap sessions idle past ``idle_timeout`` (their last
        inbound frame — any frame, pongs included — is that old)."""
        config = self.config
        ticks = [t for t in (config.heartbeat_interval,
                             (config.idle_timeout or 0.0) / 3.0) if t]
        tick = max(min(ticks), 0.01)
        while not self.draining:
            await asyncio.sleep(tick)
            now = time.monotonic()
            for session in list(self.clients.values()):
                if session.closed:
                    continue
                if config.idle_timeout is not None and \
                        now - session.last_recv > config.idle_timeout:
                    self.clients_reaped += 1
                    self._enqueue_goodbye(session, "idle_timeout")
                    asyncio.ensure_future(
                        self._reap(session, "idle_timeout"))
                elif config.heartbeat_interval is not None and \
                        now - session.last_ping >= \
                        config.heartbeat_interval:
                    session.last_ping = now
                    self.heartbeats_sent += 1
                    try:
                        session.outbox.put_nowait(ping_frame())
                        session.frames_out += 1
                    except asyncio.QueueFull:
                        pass  # a full outbox is the idle reaper's job

    def _enqueue_goodbye(self, session: ClientSession,
                         reason: str) -> None:
        try:
            session.outbox.put_nowait(goodbye_frame(reason))
            session.frames_out += 1
        except asyncio.QueueFull:
            pass  # best effort: the close itself is the signal

    def _shed_slow_consumer(self, session: ClientSession) -> None:
        """``slow_consumer="disconnect"``: a stream frame found the
        outbox full.  Shed the client — typed goodbye (evicting one
        queued frame to make room), then async teardown — without
        blocking the pump that tried to send."""
        if session.closed:
            return
        self.slow_disconnects += 1
        try:
            session.outbox.get_nowait()
        except asyncio.QueueEmpty:
            pass
        self._enqueue_goodbye(session, "slow_consumer")
        asyncio.ensure_future(self._reap(session, "slow_consumer"))

    async def _reap(self, session: ClientSession, reason: str) -> None:
        """Tear a dead/shed client down server-side: detach its
        subscriptions, end its sender, close its transport (which
        unblocks the connection's read loop)."""
        await self.disconnect(session, reason)
        try:
            session.outbox.put_nowait(_CLOSE)
        except asyncio.QueueFull:
            try:
                session.outbox.get_nowait()
            except asyncio.QueueEmpty:
                pass
            try:
                session.outbox.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                pass
        await asyncio.sleep(0)  # one tick for the sender to flush
        connection = session.connection
        if connection is not None:
            try:
                await connection.close_transport()
            except (ConnectionError, OSError):
                pass

    # -- frame handling ----------------------------------------------------

    async def handle_frame(self, session: ClientSession,
                           frame: dict) -> bool:
        """Dispatch one validated-on-entry frame; return ``False`` when
        the connection must close (protocol/auth violations)."""
        session.frames_in += 1
        session.last_recv = time.monotonic()
        self._counter_frames_in.inc()
        rid = frame.get("id")
        try:
            rtype = validate_request(frame)
        except ProtocolError as error:
            await session.send(error_frame(error.code, str(error), rid))
            return False
        if rtype == "hello":
            return await self._handle_hello(session, frame, rid)
        if rtype == "pong":
            return True  # liveness refresh only; legal pre-hello too
        if not session.greeted:
            await session.send(error_frame(
                "protocol", "first frame must be 'hello'", rid))
            return False
        try:
            if rtype == "subscribe":
                await self._handle_subscribe(session, frame, rid)
            elif rtype == "unsubscribe":
                await self._handle_unsubscribe(session, frame, rid)
            elif rtype == "push":
                await self._handle_push(session, frame, rid)
            elif rtype == "push_many":
                await self._handle_push_many(session, frame, rid)
            elif rtype == "flush":
                await self._handle_flush(session, rid)
            elif rtype == "stats":
                await self._handle_stats(session, rid)
            elif rtype == "ping":
                await session.send(ack_frame("ping", rid))
        except ProtocolError as error:
            await session.send(error_frame(error.code, str(error), rid))
        except HubClosedError as error:
            await session.send(error_frame("closed", str(error), rid))
        except RateLimitExceeded as error:
            await session.send(error_frame("rate_limited", str(error),
                                           rid))
        except AuthError as error:
            await session.send(error_frame("unauthorized", str(error),
                                           rid))
            return False
        return True

    async def _handle_hello(self, session: ClientSession, frame: dict,
                            rid) -> bool:
        version = frame.get("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            await session.send(error_frame(
                "version", f"server speaks protocol version "
                           f"{PROTOCOL_VERSION}, client sent {version}",
                rid))
            return False
        if not self.config.authorized(frame.get("token")):
            await session.send(error_frame(
                "unauthorized", "bad or missing token", rid))
            return False
        session.greeted = True
        session.authenticated = True
        session.label = frame.get("client", "")
        await session.send(ack_frame(
            "hello", rid, client_id=session.client_id,
            version=PROTOCOL_VERSION, server="repro"))
        return True

    async def _handle_subscribe(self, session: ClientSession,
                                frame: dict, rid) -> None:
        if frame.get("durable") or frame.get("resume_from") is not None:
            await self._handle_subscribe_durable(session, frame, rid)
            return
        if len(session.subscriptions) >= self.config.max_subscriptions:
            await session.send(error_frame(
                "limit", f"client is at max_subscriptions="
                         f"{self.config.max_subscriptions}", rid))
            return
        name = frame.get("name") or session.next_subscription_name()
        if name in session.subscriptions:
            await session.send(error_frame(
                "limit", f"subscription {name!r} already exists", rid))
            return
        full_name = f"{session.client_id}/{name}"
        engine = frame.get("engine") or self.config.engine
        self._attaching_client = session
        try:
            attachment = self.hub.attach(
                frame["query"], engine=engine, name=full_name,
                params=frame.get("params"))
        except AuthError:
            raise
        except (ValueError, KeyError, TypeError, SyntaxError) as error:
            raise ProtocolError(
                "bad_query", f"subscribe failed: {error}") from None
        finally:
            self._attaching_client = None
        sub = Subscription(name, attachment,
                           bool(frame.get("watermarks")))
        session.subscriptions[name] = sub
        sub.task = asyncio.ensure_future(self._pump(session, sub))
        await session.send(ack_frame(
            "subscribe", rid, subscription=name,
            query=attachment.query.name, engine=engine))

    async def _handle_subscribe_durable(self, session: ClientSession,
                                        frame: dict, rid) -> None:
        """Durable subscription: the attachment lives on the *inner*
        (WAL-logged) hub under the shared ``durable/<name>`` namespace,
        survives disconnects and server restarts, and every emitted
        match carries its durable cursor.  ``resume_from: C`` first
        replays the logged matches with cursor > C from the WAL, then
        hands over to the live stream — exactly once by cursor."""
        if self.durability is None:
            raise ProtocolError(
                "bad_query", "durable subscriptions need a server WAL "
                             "directory (serve --wal DIR)")
        name = frame.get("name")
        if not name:
            raise ProtocolError(
                "bad_query", "durable subscriptions need an explicit "
                             "'name' (it is the resume key)")
        if name in session.subscriptions:
            raise ProtocolError(
                "limit", f"subscription {name!r} already exists")
        if len(session.subscriptions) >= self.config.max_subscriptions:
            raise ProtocolError(
                "limit", f"client is at max_subscriptions="
                         f"{self.config.max_subscriptions}")
        if not session.authenticated:
            raise AuthError(
                f"client {session.client_id} is not authenticated")
        full_name = f"durable/{name}"
        outbox = self._durable_outboxes.get(full_name)
        if outbox is None:
            outbox = DurableOutbox(full_name, self.durability)
            engine = frame.get("engine") or self.config.engine
            self.durability.set_durable(True)
            try:
                outbox.attachment = self.hub._hub.attach(
                    frame["query"], engine=engine, name=full_name,
                    params=frame.get("params"), sink=outbox)
            except (ValueError, KeyError, TypeError, SyntaxError) as error:
                raise ProtocolError(
                    "bad_query", f"subscribe failed: {error}") from None
            self._durable_outboxes[full_name] = outbox
        elif outbox.queue is not None:
            raise ProtocolError(
                "limit", f"durable subscription {name!r} already has a "
                         f"consumer")
        resume_from = frame.get("resume_from")
        if resume_from is not None:
            floor = self.durability.resume_floor(full_name)
            if resume_from < floor:
                raise ProtocolError(
                    "unknown",
                    f"resume_from={resume_from} is below the WAL GC "
                    f"horizon (cursor {floor}); resume from {floor} or "
                    f"later")
        cursor_start = self.durability.cursor(full_name)
        # register before any await: every match from here on lands in
        # the queue with cursor > cursor_start, so WAL replay up to
        # cursor_start + the queue is gapless and duplicate-free
        outbox.queue = asyncio.Queue(maxsize=self.config.queue_size)
        sub = DurableSubscription(name, outbox,
                                  bool(frame.get("watermarks")),
                                  resume_from, cursor_start)
        session.subscriptions[name] = sub
        sub.task = asyncio.ensure_future(self._pump_durable(session, sub))
        await session.send(ack_frame(
            "subscribe", rid, subscription=name, durable=True,
            cursor=cursor_start,
            engine=outbox.attachment.engine if outbox.attachment
            else None))

    async def _handle_unsubscribe(self, session: ClientSession,
                                  frame: dict, rid) -> None:
        sub = session.subscriptions.pop(frame["subscription"], None)
        if sub is None:
            await session.send(error_frame(
                "unknown", f"no subscription "
                           f"{frame['subscription']!r}", rid))
            return
        if sub.durable:
            # durable unsubscribe is the real teardown: detach on the
            # inner hub (drain flushes trailing windows through the
            # outbox, WAL-logged), end the pump, drop the outbox
            outbox = sub.outbox
            matches = []
            if outbox.attachment is not None:
                matches = outbox.attachment.detach(drain=True)
            if outbox.queue is not None:
                outbox.queue.put_nowait(None)
            if sub.task is not None:
                await sub.task
            outbox.queue = None
            self._durable_outboxes.pop(outbox.name, None)
            await session.send(ack_frame(
                "unsubscribe", rid, subscription=sub.name,
                matches_flushed=len(matches)))
            return
        # graceful: trailing windows flush, the pump delivers them and
        # the final watermark, then we ack
        matches = await sub.attachment.detach()
        if sub.task is not None:
            await sub.task
        await session.send(ack_frame(
            "unsubscribe", rid, subscription=sub.name,
            matches_flushed=len(matches)))

    def _decode_events(self, objs: list) -> list:
        events = []
        for obj in objs:
            event = event_from_wire(obj, default_seq=self._next_seq)
            if event.seq >= self._next_seq:
                self._next_seq = event.seq + 1
            events.append(event)
        return events

    async def _ingest_terminal(self, ctx: MiddlewareContext) -> int:
        await self.hub.push_many(ctx.events)
        return len(ctx.events)

    async def _ingest(self, session: ClientSession, events: list) -> int:
        """Push a client's batch through its rate-limit chain; return
        how many events were accepted (the rest were shed)."""
        session.events_in += len(events)
        if session.push_chain is None:
            await self.hub.push_many(events)
            accepted = len(events)
        else:
            ctx = MiddlewareContext("on_push_many", hub=self.hub,
                                    events=events,
                                    name=session.client_id)
            result = await session.push_chain(ctx)
            accepted = 0 if result is None else result
        session.events_shed += len(events) - accepted
        if self.durability is not None:
            # between pushes the hub is quiesced: safe snapshot point
            self.durability.maybe_checkpoint()
        await self._emit_watermarks()
        return accepted

    async def _handle_push(self, session: ClientSession, frame: dict,
                           rid) -> None:
        events = self._decode_events([frame["event"]])
        accepted = await self._ingest(session, events)
        if frame.get("ack"):
            await session.send(ack_frame("push", rid, accepted=accepted))

    async def _handle_push_many(self, session: ClientSession,
                                frame: dict, rid) -> None:
        events = self._decode_events(frame["events"])
        accepted = await self._ingest(session, events)
        await session.send(ack_frame("push_many", rid,
                                     count=len(events),
                                     accepted=accepted))

    async def _handle_flush(self, session: ClientSession, rid) -> None:
        if self.flushed:
            await session.send(error_frame(
                "closed", "hub already flushed", rid))
            return
        self.flushed = True
        delivered = await self.hub.flush()
        if self.durability is not None:
            # flush is end-of-stream: checkpoint the flushed state and
            # end the durable pumps (their trailing matches are queued
            # ahead of the sentinel) so consumers see a final watermark
            self.durability.checkpoint()
            for outbox in self._durable_outboxes.values():
                if outbox.queue is not None:
                    outbox.queue.put_nowait(None)
        await self._emit_watermarks(final=False)
        await session.send(ack_frame("flush", rid, delivered=delivered))

    async def _handle_stats(self, session: ClientSession, rid) -> None:
        await session.send(stats_frame(
            self.hub.stats().to_dict(), self.server_stats(), rid))

    # -- match delivery ----------------------------------------------------

    async def _pump(self, session: ClientSession,
                    sub: Subscription) -> None:
        """Move one subscription's matches onto its connection; ends
        when the attachment's iteration ends (flush/detach), closing
        with a final ``watermark`` frame."""
        try:
            async for match in sub.attachment:
                sub.matches_sent += 1
                session.matches_out += 1
                self._counter_matches.inc()
                await session.send(match_frame(sub.name, match))
            await session.send(watermark_frame(
                sub.name, sub.attachment.watermark, final=True))
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass  # connection torn down mid-send; disconnect() cleans up

    async def _pump_durable(self, session: ClientSession,
                            sub: DurableSubscription) -> None:
        """Deliver one durable subscription: first the WAL-replayed
        resume range ``(resume_from, cursor_start]``, then the live
        queue, skipping anything at or below the last sent cursor (the
        two can overlap by at most the registration instant).  Ends on
        unsubscribe/shutdown (``None`` sentinel) with a final
        watermark frame."""
        outbox = sub.outbox
        try:
            if sub.resume_from is not None:
                for cursor, wire in self.durability.read_emits(
                        outbox.name, after=sub.resume_from,
                        upto=sub.cursor_start):
                    sub.matches_sent += 1
                    session.matches_out += 1
                    self._counter_matches.inc()
                    sub.last_cursor = cursor
                    await session.send(match_frame_wire(
                        sub.name, wire, cursor=cursor))
            while True:
                queue = outbox.queue
                if queue is None:
                    return
                item = await queue.get()
                if item is None:
                    break
                cursor, match = item
                if cursor <= sub.last_cursor:
                    continue
                sub.matches_sent += 1
                session.matches_out += 1
                self._counter_matches.inc()
                sub.last_cursor = cursor
                await session.send(match_frame(sub.name, match,
                                               cursor=cursor))
            await session.send(watermark_frame(
                sub.name,
                outbox.attachment.watermark
                if outbox.attachment is not None else float("-inf"),
                final=True))
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass  # connection torn down mid-send; disconnect() cleans up

    async def _emit_watermarks(self, final: bool = False) -> None:
        """Stream watermark progress to subscriptions that asked for it
        (``subscribe`` with ``watermarks: true``)."""
        watermark = self.hub.watermark
        if watermark == float("-inf"):
            return
        for session in list(self.clients.values()):
            for sub in session.subscriptions.values():
                if sub.watermarks and watermark > sub.last_watermark:
                    sub.last_watermark = watermark
                    await session.send(watermark_frame(
                        sub.name, watermark, final=final))

    # -- observability -----------------------------------------------------

    def server_stats(self) -> dict:
        stats = {
            "clients_connected": len(self.clients),
            "clients_total": self.clients_total,
            "clients_rejected": self.clients_rejected,
            "subscriptions": sum(len(s.subscriptions)
                                 for s in self.clients.values()),
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "draining": self.draining,
            "flushed": self.flushed,
            "events_shed": 0 if self.ratelimit is None
            else self.ratelimit.shed_total,
            "auth_refused": self.auth.refused_total,
            "durable_subscriptions": len(self._durable_outboxes),
            "heartbeats_sent": self.heartbeats_sent,
            "clients_reaped": self.clients_reaped,
            "slow_disconnects": self.slow_disconnects,
            "frames_dropped": self.frames_dropped_total,
            "connections_reset": self.connections_reset_total,
        }
        if self.chaos is not None:
            stats["chaos"] = self.chaos.stats()
        return stats

    def render_metrics(self) -> str:
        """The ``/metrics`` exposition: the middleware's live counters,
        the server gauges, and the flattened hub stats snapshot."""
        self._gauge_clients.set(float(len(self.clients)))
        self._gauge_subs.set(float(sum(
            len(s.subscriptions) for s in self.clients.values())))
        self._gauge_draining.set(float(self.draining))
        self.metrics.observe_stats(self.hub.stats())
        if self.durability is not None:
            self.metrics.observe_durability(self.durability.stats_dict())
        if self.chaos is not None:
            self.metrics.observe_stats(self.chaos.stats(), prefix="chaos")
        self.metrics.observe_stats(
            {"heartbeats_sent": self.heartbeats_sent,
             "clients_reaped": self.clients_reaped,
             "slow_disconnects": self.slow_disconnects,
             "frames_dropped": self.frames_dropped_total,
             "connections_reset": self.connections_reset_total},
            prefix="resilience")
        return self.metrics.render()

    # -- graceful drain ----------------------------------------------------

    async def shutdown(self, reason: str = "shutdown") -> None:
        """SIGTERM path: flush the hub so every already-pushed event's
        matches are delivered, wait for the pumps to hand them to the
        senders, say goodbye, release everything.  Idempotent."""
        if self.draining:
            return
        self.draining = True
        if self._liveness_task is not None:
            self._liveness_task.cancel()
            self._liveness_task = None
        try:
            await self.hub.aclose()   # flush + detach; pumps end cleanly
        except Exception:
            self.hub.abort()
        self.flushed = True
        if self.durability is not None:
            # the flush's trailing matches are in the queues; end the
            # durable pumps, then persist the flushed state so a
            # restart resumes instantly
            for outbox in self._durable_outboxes.values():
                if outbox.queue is not None:
                    outbox.queue.put_nowait(None)
            try:
                self.durability.close(checkpoint=True)
            except Exception:
                self.durability.close(checkpoint=False)
        pumps = [sub.task
                 for session in self.clients.values()
                 for sub in session.subscriptions.values()
                 if sub.task is not None]
        if pumps:
            done, pending = await asyncio.wait(
                pumps, timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
        for session in list(self.clients.values()):
            session.subscriptions.clear()
            # best-effort goodbye: a slow consumer's full outbox must
            # not stall the whole shutdown behind one blocked put
            self._enqueue_goodbye(session, reason)
            session.closed = True
            try:
                session.outbox.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                pass  # sender still draining; connection close ends it
        # actively close the transports so clients blocked on a read
        # see EOF now instead of waiting for their own next send (the
        # auto-reconnect wrapper detects the restart through this);
        # a short grace first lets each sender flush the goodbye
        await asyncio.sleep(0.05)
        for session in list(self.clients.values()):
            connection = session.connection
            if connection is not None:
                try:
                    await connection.close_transport()
                except (ConnectionError, OSError):
                    pass


class Connection:
    """The transport-agnostic connection driver.

    Subclasses (:class:`~repro.server.tcp.TCPConnection`,
    :class:`~repro.server.ws.WSConnection`) implement raw-message I/O:
    ``recv() -> bytes | None`` (one message, ``None`` on EOF/close),
    ``send_encoded(bytes)`` and ``close_transport()``.  ``run()`` owns
    the session lifecycle: accept/reject, the sender task, the read →
    decode → dispatch loop, and teardown through
    :meth:`ServerCore.disconnect`.
    """

    transport = "?"

    def __init__(self, core: ServerCore, peer: str) -> None:
        self.core = core
        self.peer = peer
        self.session: Optional[ClientSession] = None

    async def recv(self) -> Optional[bytes]:  # pragma: no cover
        raise NotImplementedError

    async def send_encoded(self, payload: bytes) -> None:  # pragma: no cover
        raise NotImplementedError

    async def close_transport(self) -> None:  # pragma: no cover
        raise NotImplementedError

    async def run(self) -> None:
        core = self.core
        try:
            session = core.connect(self.peer, self.transport)
        except ServerBusy as busy:
            try:
                await self.send_encoded(encode_frame(
                    error_frame(busy.code, str(busy))))
            except (ConnectionError, OSError):
                pass
            await self.close_transport()
            return
        self.session = session
        session.connection = self  # lets the idle reaper close us
        sender = asyncio.ensure_future(self._sender(session))
        try:
            while True:
                try:
                    message = await self.recv()
                except ProtocolError as error:
                    await session.send(error_frame(error.code,
                                                   str(error)))
                    break
                if message is None:
                    break
                try:
                    frame = decode_frame(message,
                                         core.config.max_frame)
                except ProtocolError as error:
                    await session.send(error_frame(error.code,
                                                   str(error)))
                    break
                if not await core.handle_frame(session, frame):
                    break
                chaos = core.connection_chaos
                if chaos is not None and chaos.should_reset():
                    # injected reset: kill the transport with no
                    # goodbye — the client sees a dead socket
                    core.connections_reset_total += 1
                    await self.close_transport()
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                await core.disconnect(session)
                await session.end_outbox()
                try:
                    await sender
                except (ConnectionError, OSError):
                    pass
            finally:
                # if cancellation interrupted the drain above, the
                # sender must not outlive the connection
                if not sender.done():
                    sender.cancel()
                await self.close_transport()

    async def _sender(self, session: ClientSession) -> None:
        """Single writer per connection: serializes every frame the
        handlers and pumps queue.  After a send failure it keeps
        consuming (dropping) so producers are never left suspended on
        the outbox."""
        broken = False
        while True:
            frame = await session.outbox.get()
            if frame is _CLOSE:
                return
            if broken:
                continue
            try:
                await self.send_encoded(encode_frame(frame))
                self.core._counter_frames_out.inc()
            except (ConnectionError, OSError):
                broken = True
