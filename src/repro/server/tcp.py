"""TCP transport: newline-delimited JSON over a plain socket.

The simplest way to talk to the server — one JSON object per line,
both directions::

    $ printf '%s\n%s\n' \
        '{"type":"hello","version":1}' \
        '{"type":"stats","id":1}' | nc localhost 7711

Framing is :meth:`StreamReader.readline` with the reader limit set
just above the protocol's per-message cap, so an unterminated flood
surfaces as a ``too_large`` error instead of unbounded buffering.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.server.core import Connection, ServerCore
from repro.server.protocol import ProtocolError

__all__ = ["TCPConnection", "TCPServer"]


class TCPConnection(Connection):
    """One accepted NDJSON-over-TCP client."""

    transport = "tcp"

    def __init__(self, core: ServerCore, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, peer: str) -> None:
        super().__init__(core, peer)
        self.reader = reader
        self.writer = writer

    async def recv(self) -> Optional[bytes]:
        while True:
            try:
                line = await self.reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # readline() signals a line over the reader limit as
                # LimitOverrunError or a bare ValueError depending on
                # where the separator lands
                raise ProtocolError(
                    "too_large", "line exceeds the per-message limit"
                ) from None
            if not line:
                return None  # EOF
            if line.strip():
                return line
            # tolerate keep-alive blank lines

    async def send_encoded(self, payload: bytes) -> None:
        self.writer.write(payload)
        await self.writer.drain()

    async def close_transport(self) -> None:
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass


class TCPServer:
    """The NDJSON listener; hands each socket to the shared
    :class:`~repro.server.core.Connection` driver."""

    def __init__(self, core: ServerCore, host: str, port: int) -> None:
        self.core = core
        self.host = host
        self.port = port  # 0 = ephemeral; resolved on start()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port,
            limit=self.core.config.max_frame + 1024)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = (f"tcp:{peername[0]}:{peername[1]}" if peername
                else "tcp:?")
        try:
            await TCPConnection(self.core, reader, writer, peer).run()
        except asyncio.CancelledError:
            # loop shutdown cancelled the handler mid-teardown; end
            # quietly — 3.11's streams callback logs cancelled tasks
            writer.close()
