"""The serving runtime: listeners + signal-driven graceful drain.

:class:`ServeRuntime` owns one :class:`~repro.server.core.ServerCore`
and whichever listeners were configured (TCP, WebSocket, HTTP
observability).  ``SIGTERM``/``SIGINT`` trigger the drain sequence:

1. stop accepting connections (listeners close; ``/healthz`` turns
   503 while the HTTP listener is still up),
2. flush the hub — trailing windows emit, every already-pushed
   event's matches are *delivered* to their subscribers,
3. wait for the pump tasks to hand those matches to the senders
   (bounded by ``drain_timeout``),
4. send every client a ``goodbye`` frame and close.

:func:`run_server` is the synchronous entry the CLI calls.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from repro.server.core import ServerConfig, ServerCore
from repro.server.http import HTTPServer
from repro.server.tcp import TCPServer
from repro.server.ws import WSServer

__all__ = ["ServeRuntime", "run_server"]


class ServeRuntime:
    """Listeners + core + shutdown orchestration for one serve run."""

    def __init__(self, config: ServerConfig, *,
                 tcp: Optional[tuple[str, int]] = None,
                 ws: Optional[tuple[str, int]] = None,
                 http: Optional[tuple[str, int]] = None,
                 ratelimit=None, quiet: bool = False) -> None:
        if tcp is None and ws is None:
            raise ValueError(
                "a serving runtime needs at least one of tcp=/ws=")
        self.core = ServerCore(config, ratelimit=ratelimit)
        self.tcp = TCPServer(self.core, *tcp) if tcp else None
        self.ws = WSServer(self.core, *ws) if ws else None
        self.http = HTTPServer(self.core, *http) if http else None
        self.quiet = quiet
        self._stop = asyncio.Event()
        self._stop_reason = "shutdown"

    def _say(self, message: str) -> None:
        if not self.quiet:
            # flush=True: tests and the CI smoke script parse these
            # lines from a pipe to learn the ephemeral port numbers
            print(message, flush=True)

    async def start(self) -> None:
        for server, label in ((self.tcp, "tcp"), (self.ws, "ws"),
                              (self.http, "http")):
            if server is not None:
                await server.start()
                self._say(f"serving {label} on "
                          f"{server.host}:{server.port}")

    def request_stop(self, reason: str = "shutdown") -> None:
        """Signal-safe: flips the event the serve loop waits on."""
        self._stop_reason = reason
        self._stop.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_stop, signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                # non-unix event loop: the caller falls back to
                # KeyboardInterrupt / explicit request_stop()
                pass

    async def serve_until_stopped(self) -> None:
        await self._stop.wait()
        await self.shutdown(self._stop_reason)

    async def shutdown(self, reason: str = "shutdown") -> None:
        self._say(f"draining ({reason})")
        # stop accepting first: new sockets are refused while the
        # drain delivers what is already in flight
        for server in (self.tcp, self.ws):
            if server is not None:
                await server.stop()
        await self.core.shutdown(reason)
        if self.http is not None:
            await self.http.stop()
        self._say("drained")

    async def run(self) -> None:
        """start → wait for a stop signal → drain.  The whole serve
        lifecycle, used by ``python -m repro serve`` in network mode."""
        await self.start()
        self.install_signal_handlers()
        try:
            await self.serve_until_stopped()
        except asyncio.CancelledError:
            await self.shutdown("cancelled")
            raise


def run_server(config: ServerConfig, *,
               tcp: Optional[tuple[str, int]] = None,
               ws: Optional[tuple[str, int]] = None,
               http: Optional[tuple[str, int]] = None,
               ratelimit=None, quiet: bool = False) -> None:
    """Blocking entry point: serve until SIGTERM/SIGINT, then drain."""
    runtime = ServeRuntime(config, tcp=tcp, ws=ws, http=http,
                           ratelimit=ratelimit, quiet=quiet)
    try:
        asyncio.run(runtime.run())
    except KeyboardInterrupt:
        pass
