"""Minimal HTTP/1.1 support: the observability endpoint + the parsing
the WebSocket handshake shares.

Stdlib-only by design (the container bakes no third-party server): a
request parser over :class:`asyncio.StreamReader`, a response builder,
and :class:`HTTPServer` exposing

* ``GET /metrics`` — the Prometheus text exposition from the core's
  :class:`~repro.middleware.metrics.MetricsMiddleware`, including the
  flattened hub stats snapshot and the server's own gauges;
* ``GET /healthz`` — liveness (``200 ok``; ``503 draining`` once the
  runtime began its shutdown drain).

Connections are one-shot (``Connection: close``) — scrape traffic is
low-rate and keeping the server loop trivial beats keep-alive here.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = ["HTTPRequest", "read_http_request", "http_response",
           "HTTPServer"]

MAX_HEADER_BYTES = 16384
MAX_HEADER_COUNT = 64

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 431: "Request Header Fields "
                                                "Too Large",
                503: "Service Unavailable", 101: "Switching Protocols"}


@dataclass
class HTTPRequest:
    """The parsed request line + headers (bodies are never needed:
    both consumers — the scrape endpoint and the WS handshake — are
    body-less GETs)."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_http_request(reader: asyncio.StreamReader) -> HTTPRequest:
    """Parse one request head (request line + headers, CRLF-tolerant).

    Raises ``ValueError`` on malformed input or oversized heads; the
    caller answers with a 400/431 and closes.
    """
    line = await reader.readline()
    if not line:
        raise ConnectionError("peer closed before the request line")
    request_line = line.decode("latin-1").strip()
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path, version = parts
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ValueError("request head too large")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ValueError("too many request headers")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise ValueError(f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()
    return HTTPRequest(method, path, version, headers)


def http_response(status: int, body: str = "",
                  content_type: str = "text/plain; charset=utf-8",
                  extra_headers: tuple[tuple[str, str], ...] = ()) -> bytes:
    payload = body.encode("utf-8")
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(payload)}",
             "Connection: close"]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


class HTTPServer:
    """The observability listener (``GET /metrics``, ``GET /healthz``)."""

    def __init__(self, core, host: str, port: int) -> None:
        self.core = core
        self.host = host
        self.port = port  # 0 = ephemeral; resolved on start()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_http_request(reader)
            except ValueError as error:
                writer.write(http_response(400, f"{error}\n"))
            except ConnectionError:
                return
            else:
                writer.write(self._respond(request))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _respond(self, request: HTTPRequest) -> bytes:
        if request.method != "GET":
            return http_response(405, "only GET is supported\n")
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            return http_response(
                200, self.core.render_metrics(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        if path == "/healthz":
            if self.core.draining:
                return http_response(503, "draining\n")
            return http_response(200, "ok\n")
        return http_response(404, f"no such endpoint: {path}\n")
