"""``repro.server`` — the asyncio serving runtime over the hub.

Layers (stdlib-only):

* :mod:`repro.server.protocol` — the versioned NDJSON wire protocol;
* :mod:`repro.server.core` — :class:`ServerCore`: the hub-owning,
  transport-agnostic request handler (auth, per-client rate limits,
  subscription pumps, graceful drain);
* :mod:`repro.server.tcp` / :mod:`repro.server.ws` — the two framings
  over one shared connection driver;
* :mod:`repro.server.http` — ``GET /metrics`` + ``GET /healthz``;
* :mod:`repro.server.runner` — signal handling and the serve loop;
* :mod:`repro.server.client` — the asyncio client the CLI subcommand,
  tests, and the load harness share.
"""

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.server.core import (
    AuthError,
    Connection,
    ServerBusy,
    ServerConfig,
    ServerCore,
)
from repro.server.http import HTTPServer
from repro.server.tcp import TCPServer
from repro.server.ws import WSServer
from repro.server.runner import ServeRuntime, run_server
from repro.server.client import (
    ReconnectingClient,
    ServerClient,
    ServerError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "AuthError",
    "Connection",
    "ServerBusy",
    "ServerConfig",
    "ServerCore",
    "HTTPServer",
    "TCPServer",
    "WSServer",
    "ServeRuntime",
    "run_server",
    "ServerClient",
    "ServerError",
    "ReconnectingClient",
]
