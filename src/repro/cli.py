"""Command-line interface.

Mirrors the original deployment's workflow (Sec. 4.1: a client program
reads events from a source file and sends them to SPECTRE) from one
binary:

.. code-block:: console

    # generate a dataset
    python -m repro generate --kind nyse --events 10000 --out quotes.csv

    # run a query file against it
    python -m repro run --query q.sql --data quotes.csv --engine spectre \\
        --k 8 --param lowerLimit=40 --param upperLimit=60

    # compare engines / verify the equivalence contract
    python -m repro verify --query q.sql --data quotes.csv --k 8

``--query`` files use the paper's extended MATCH-RECOGNIZE notation
(Fig. 9; see ``repro.patterns.parser``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.datasets import (
    generate_nyse,
    generate_price_walk,
    generate_rand,
    load_events_csv,
    save_events_csv,
)
from repro.patterns.parser import parse_query
from repro.sequential.engine import run_sequential
from repro.spectre.config import SpectreConfig
from repro.spectre.engine import SpectreEngine
from repro.spectre.threaded import ThreadedSpectreEngine


def _parse_params(pairs: Sequence[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param needs name=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        try:
            params[name] = float(raw) if "." in raw else int(raw)
        except ValueError:
            params[name] = raw
    return params


def _load_query(path: str, params: Sequence[str]):
    text = Path(path).read_text()
    return parse_query(text, name=Path(path).stem,
                       params=_parse_params(params))


def cmd_generate(args: argparse.Namespace) -> int:
    generators = {
        "nyse": lambda: generate_nyse(
            args.events, n_symbols=args.symbols, n_leading=args.leading,
            seed=args.seed, unchanged_probability=args.flat),
        "rand": lambda: generate_rand(args.events, n_symbols=args.symbols,
                                      seed=args.seed),
        "walk": lambda: generate_price_walk(args.events, seed=args.seed,
                                            reversion=args.reversion),
    }
    events = generators[args.kind]()
    save_events_csv(events, args.out)
    print(f"wrote {len(events)} events to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.param)
    events = load_events_csv(args.data)
    started = time.perf_counter()
    if args.engine == "sequential":
        result = run_sequential(query, events)
        complex_events = result.complex_events
        extra = (f"ground-truth completion probability "
                 f"{result.completion_probability:.0%}")
    else:
        config = SpectreConfig(k=args.k)
        engine_cls = ThreadedSpectreEngine if args.engine == "threaded" \
            else SpectreEngine
        engine = engine_cls(query, config)
        result = engine.run(events)
        complex_events = result.complex_events
        stats = result.stats
        extra = (f"k={args.k} versions={stats.versions_created} "
                 f"dropped={stats.versions_dropped} "
                 f"rollbacks={stats.rollbacks}")
    elapsed = time.perf_counter() - started
    print(f"{query.name}: {len(complex_events)} complex events from "
          f"{len(events)} input events in {elapsed:.2f}s ({extra})")
    limit = args.show
    for ce in complex_events[:limit]:
        print(f"  {ce!r}")
    if len(complex_events) > limit:
        print(f"  ... and {len(complex_events) - limit} more")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.param)
    events = load_events_csv(args.data)
    sequential = run_sequential(query, events)
    result = SpectreEngine(query, SpectreConfig(k=args.k)).run(events)
    if result.identities() == sequential.identities():
        print(f"OK: SPECTRE(k={args.k}) output identical to sequential "
              f"({len(result.complex_events)} complex events)")
        return 0
    print(f"MISMATCH: sequential={len(sequential.complex_events)} "
          f"spectre={len(result.complex_events)} complex events")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPECTRE reproduction: speculative parallel CEP with "
                    "consumption policies")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset")
    generate.add_argument("--kind", choices=["nyse", "rand", "walk"],
                          default="nyse")
    generate.add_argument("--events", type=int, default=10_000)
    generate.add_argument("--symbols", type=int, default=300)
    generate.add_argument("--leading", type=int, default=16)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--flat", type=float, default=0.0,
                          help="probability of an unchanged quote (nyse)")
    generate.add_argument("--reversion", type=float, default=0.0,
                          help="mean reversion strength (walk)")
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_generate)

    run = commands.add_parser("run", help="run a query over a CSV stream")
    run.add_argument("--query", required=True,
                     help="file in extended MATCH-RECOGNIZE notation")
    run.add_argument("--data", required=True, help="events CSV")
    run.add_argument("--engine",
                     choices=["sequential", "spectre", "threaded"],
                     default="spectre")
    run.add_argument("--k", type=int, default=4,
                     help="operator instances (spectre engines)")
    run.add_argument("--param", action="append", default=[],
                     help="query parameter name=value (repeatable)")
    run.add_argument("--show", type=int, default=5,
                     help="complex events to print")
    run.set_defaults(func=cmd_run)

    verify = commands.add_parser(
        "verify", help="check SPECTRE output equals the sequential engine")
    verify.add_argument("--query", required=True)
    verify.add_argument("--data", required=True)
    verify.add_argument("--k", type=int, default=4)
    verify.add_argument("--param", action="append", default=[])
    verify.set_defaults(func=cmd_verify)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
