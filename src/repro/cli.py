"""Command-line interface.

Mirrors the original deployment's workflow (Sec. 4.1: a client program
reads events from a source file and sends them to SPECTRE) from one
binary:

.. code-block:: console

    # generate a dataset
    python -m repro generate --kind nyse --events 10000 --out quotes.csv

    # run a query file against it on any engine/scheduler
    python -m repro run --query q.sql --data quotes.csv --engine spectre \\
        --k 8 --scheduler topk --param lowerLimit=40 --param upperLimit=60

    # compare engines / verify the equivalence contract
    python -m repro verify --query q.sql --data quotes.csv --k 8 \\
        --engine elastic --scheduler roundrobin

    # process-parallel: shard the stream across worker processes
    python -m repro run --query q.sql --data quotes.csv \\
        --engine sharded --workers 4 --k 2

    # streaming: read events from stdin (or tail a growing CSV with
    # --poll), emit matches the moment they validate
    tail -n +1 -f quotes.csv | python -m repro run --query q.sql \\
        --data - --follow --engine threaded --k 4 --slack 10

    # run a multi-stage operator pipeline on the speculative runtime
    python -m repro graph --data quotes.csv --stage band=q.sql \\
        --stage meta=meta.sql --engine spectre --k 4

    # serve MANY queries over one shared ingestion pass (multi-query
    # StreamHub): one decode/reorder, N isolated engine sessions,
    # matches tagged by query name
    tail -n +1 -f quotes.csv | python -m repro serve \\
        --query band=q.sql --query osc=q2.sql --data - \\
        --engine threaded --k 4 --slack 10

``--query`` files use the paper's extended MATCH-RECOGNIZE notation
(Fig. 9; see ``repro.patterns.parser``).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.datasets import (
    event_from_row,
    generate_nyse,
    generate_price_walk,
    generate_rand,
    load_events_csv,
    save_events_csv,
)
from repro.graph import Operator, OperatorGraph
from repro.patterns.parser import parse_query
from repro.runtime.scheduler import SCHEDULER_NAMES
from repro.sequential.engine import SequentialEngine
from repro.spectre.config import SpectreConfig
from repro.streaming.builder import ENGINE_ALIASES, build_engine, pipeline

SPECULATIVE_ENGINES = ("spectre", "threaded", "elastic", "approximate",
                       "sharded")
RUN_ENGINES = ("sequential",) + SPECULATIVE_ENGINES + ("trex",)
GRAPH_ENGINES = ("sequential",) + SPECULATIVE_ENGINES


def _parse_params(pairs: Sequence[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param needs name=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        try:
            params[name] = float(raw) if "." in raw else int(raw)
        except ValueError:
            params[name] = raw
    return params


def _load_query(path: str, params: Sequence[str], name: str | None = None):
    text = Path(path).read_text()
    return parse_query(text, name=name or Path(path).stem,
                       params=_parse_params(params))


def _make_config(args: argparse.Namespace) -> SpectreConfig:
    return SpectreConfig(k=args.k, scheduler=args.scheduler,
                         workers=getattr(args, "workers", 1))


def _make_engine(name: str, query, config: SpectreConfig):
    """Instantiate an engine by CLI name (shared fluent-builder path)."""
    return build_engine(query, name, config=config)


def cmd_generate(args: argparse.Namespace) -> int:
    generators = {
        "nyse": lambda: generate_nyse(
            args.events, n_symbols=args.symbols, n_leading=args.leading,
            seed=args.seed, unchanged_probability=args.flat),
        "rand": lambda: generate_rand(args.events, n_symbols=args.symbols,
                                      seed=args.seed),
        "walk": lambda: generate_price_walk(args.events, seed=args.seed,
                                            reversion=args.reversion),
    }
    events = generators[args.kind]()
    save_events_csv(events, args.out)
    print(f"wrote {len(events)} events to {args.out}")
    return 0


def _tail_complete_lines(handle, poll: float):
    """Yield only newline-terminated lines, waiting ``poll`` seconds at
    end-of-file.  A producer appending rows non-atomically must never
    surface a half-written line as a (corrupt) CSV row, so partial
    reads are buffered until their terminator arrives."""
    buffer = ""
    while True:
        chunk = handle.readline()
        if not chunk:
            time.sleep(poll)
            continue
        buffer += chunk
        if buffer.endswith("\n"):
            yield buffer
            buffer = ""


def _iter_csv_events(args: argparse.Namespace):
    """Replay CSV rows from ``--data`` ('-' = stdin) as events.

    With ``--poll`` > 0 the file is *tailed*: at end-of-file the reader
    waits for appended rows instead of stopping — the original
    deployment's "client program sends events over a TCP connection"
    (Sec. 4.1), with a growing file standing in for the socket.
    """
    handle = sys.stdin if args.data == "-" else open(args.data, newline="")
    try:
        source = handle if args.data == "-" or args.poll <= 0 \
            else _tail_complete_lines(handle, args.poll)
        for row in csv.DictReader(source):
            yield event_from_row(row)
    finally:
        if handle is not sys.stdin:
            handle.close()


def cmd_run_follow(args: argparse.Namespace, query) -> int:
    """Streaming run: push events one at a time, print matches as their
    window version validates."""
    builder = pipeline(query).engine(args.engine,
                                     config=_make_config(args))
    if args.slack is not None:
        builder.out_of_order(args.slack)
    shown = 0
    with builder.open() as session:
        for event in _iter_csv_events(args):
            for ce in session.push(event):
                shown += 1
                print(f"match #{shown} @event {session.events_pushed - 1}: "
                      f"{ce!r}", flush=True)
        for ce in session.flush():
            shown += 1
            print(f"match #{shown} @flush: {ce!r}", flush=True)
        late = getattr(session, "late_events", 0)
        print(f"{query.name}: {shown} complex events from "
              f"{session.events_pushed} streamed events "
              f"({args.engine}, late_dropped={late})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.param)
    if args.follow:
        return cmd_run_follow(args, query)
    events = load_events_csv(args.data)
    started = time.perf_counter()
    if args.engine == "sequential":
        result = SequentialEngine(query).run(events)
        complex_events = result.complex_events
        extra = (f"ground-truth completion probability "
                 f"{result.completion_probability:.0%}")
    elif args.engine == "trex":
        result = _make_engine("trex", query, _make_config(args)).run(events)
        complex_events = result.complex_events
        extra = (f"automaton baseline, "
                 f"{result.events_per_second:,.0f} events/s")
    else:
        engine = _make_engine(args.engine, query, _make_config(args))
        result = engine.run(events)
        complex_events = result.complex_events
        stats = result.stats
        extra = (f"k={args.k} scheduler={args.scheduler} "
                 f"versions={stats.versions_created} "
                 f"dropped={stats.versions_dropped} "
                 f"rollbacks={stats.rollbacks}")
        if args.engine == "elastic":
            extra += f" adaptations={len(engine.adaptations)}"
        elif args.engine == "approximate":
            extra += f" early_emissions={len(engine.early)}"
        elif args.engine == "sharded":
            extra += (f" shards={len(engine.plan)} "
                      f"workers={engine.workers_used}")
    elapsed = time.perf_counter() - started
    print(f"{query.name}: {len(complex_events)} complex events from "
          f"{len(events)} input events in {elapsed:.2f}s ({extra})")
    limit = args.show
    for ce in complex_events[:limit]:
        print(f"  {ce!r}")
    if len(complex_events) > limit:
        print(f"  ... and {len(complex_events) - limit} more")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.param)
    events = load_events_csv(args.data)
    sequential = SequentialEngine(query).run(events)
    engine = _make_engine(args.engine, query, _make_config(args))
    result = engine.run(events)
    label = (f"{args.engine.upper()}(k={args.k}, "
             f"scheduler={args.scheduler})")
    if result.identities() == sequential.identities():
        print(f"OK: {label} output identical to sequential "
              f"({len(result.complex_events)} complex events)")
        return 0
    print(f"MISMATCH: sequential={len(sequential.complex_events)} "
          f"{args.engine}={len(result.complex_events)} complex events")
    return 1


def _parse_query_specs(specs: Sequence[str]) -> list[tuple[str, str]]:
    """``--query FILE`` or ``--query NAME=FILE`` → [(name, path)]."""
    parsed: list[tuple[str, str]] = []
    for spec in specs:
        if "=" in spec:
            name, path = spec.split("=", 1)
        else:
            name, path = Path(spec).stem, spec
        parsed.append((name, path))
    return parsed


def _parse_hostport(spec: str, flag: str) -> tuple[str, int]:
    """``HOST:PORT`` (port 0 = ephemeral; empty host = 127.0.0.1)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise SystemExit(f"{flag} needs HOST:PORT, got {spec!r}")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"{flag}: bad port in {spec!r}") from None


_ATTR_TYPES = {"float": float, "int": int, "str": str, "bool": bool}


def _validation_from_args(args: argparse.Namespace):
    """Build a ValidationMiddleware from --require/--invalid-policy
    (``None`` when no --require was given)."""
    from repro.middleware import ValidationMiddleware

    if not args.require:
        return None
    required: list[str] = []
    types: dict[str, type] = {}
    for spec in args.require:
        attr, _, typename = spec.partition(":")
        if not attr:
            raise SystemExit(f"bad --require spec: {spec!r}")
        required.append(attr)
        if typename:
            if typename not in _ATTR_TYPES:
                raise SystemExit(
                    f"bad --require type {typename!r}; expected one "
                    f"of {sorted(_ATTR_TYPES)}")
            types[attr] = _ATTR_TYPES[typename]
    return ValidationMiddleware(required=required, types=types,
                                policy=args.invalid_policy)


def _serve_middleware(args: argparse.Namespace):
    """Translate serve flags into the hub's middleware chain.

    Order matters (first = outermost): validation rejects/nulls before
    the rate limiter spends tokens on malformed events; metrics and
    trace observe what actually got through."""
    from repro.middleware import (
        MetricsMiddleware,
        RateLimitMiddleware,
        TraceMiddleware,
    )

    middleware: list = []
    ratelimit = metrics = trace = None
    validation = _validation_from_args(args)
    if validation is not None:
        middleware.append(validation)
    if args.rate_limit is not None:
        ratelimit = RateLimitMiddleware(args.rate_limit,
                                        burst=args.rate_burst)
        middleware.append(ratelimit)
    if args.metrics:
        metrics = MetricsMiddleware()
        middleware.append(metrics)
    if args.trace is not None:
        trace = TraceMiddleware(capacity=args.trace)
        middleware.append(trace)
    return middleware, validation, ratelimit, metrics, trace


def cmd_serve_network(args: argparse.Namespace) -> int:
    """Network mode: listeners over an asyncio hub instead of a local
    CSV pipe.  Clients connect over TCP/WebSocket, authenticate, push
    events, and subscribe queries; ``--query`` files (if any) are
    pre-attached server-side and print their matches locally."""
    import asyncio

    from repro.middleware import TraceMiddleware
    from repro.server import ServerConfig
    from repro.server.runner import ServeRuntime

    if args.data:
        raise SystemExit(
            "--data is the local pipe mode; with --tcp/--ws the events "
            "arrive from connected clients")
    middleware: list = []
    validation = _validation_from_args(args)
    if validation is not None:
        middleware.append(validation)
    trace = None
    if args.trace is not None:
        trace = TraceMiddleware(capacity=args.trace)
        middleware.append(trace)
    chaos = None
    if (args.chaos_drop or args.chaos_dup or args.chaos_delay or
            args.chaos_sink_error or args.chaos_wal_fail or
            args.chaos_reset_after):
        from repro.resilience import ChaosConfig
        chaos = ChaosConfig(
            seed=args.chaos_seed,
            drop_rate=args.chaos_drop,
            dup_rate=args.chaos_dup,
            delay_rate=args.chaos_delay,
            sink_error_rate=args.chaos_sink_error,
            wal_fail_rate=args.chaos_wal_fail,
            reset_after=args.chaos_reset_after)
        print(f"chaos: enabled (seed={args.chaos_seed})", flush=True)
    config = ServerConfig(
        slack=args.slack if args.slack is not None else 0.0,
        engine=args.engine,
        auth_token=args.auth_token,
        max_clients=args.max_clients,
        client_rate=args.rate_limit,      # per-client buckets in network mode
        client_burst=args.rate_burst,
        share=not args.no_share,
        middleware=tuple(middleware),
        wal_dir=args.wal,
        checkpoint_every=args.checkpoint_every,
        wal_fsync=args.wal_fsync,
        keep_segments=args.wal_keep_segments,
        heartbeat_interval=args.heartbeat,
        idle_timeout=args.idle_timeout,
        slow_consumer=args.slow_consumer,
        chaos=chaos)
    listeners = {
        name: _parse_hostport(spec, f"--{name}") if spec else None
        for name, spec in (("tcp", args.tcp), ("ws", args.ws),
                           ("http", args.http))}
    specs = _parse_query_specs(args.query)
    counts: dict[str, int] = {}

    def make_sink(name: str):
        def sink(ce) -> None:
            counts[name] += 1
            print(f"[{name}] match #{counts[name]}: {ce!r}", flush=True)
        return sink

    async def _run(runtime: ServeRuntime) -> None:
        for name, path in specs:
            query = _load_query(path, args.param, name=name)
            counts[name] = 0
            runtime.core.hub.attach(query, engine=args.engine,
                                    name=name, sink=make_sink(name))
        await runtime.run()

    try:
        runtime = ServeRuntime(config, tcp=listeners["tcp"],
                               ws=listeners["ws"], http=listeners["http"])
    except ValueError as error:
        raise SystemExit(str(error)) from None
    durability = runtime.core.durability
    if durability is not None:
        report = durability.recovery_report
        if report is not None and report.recovered:
            print(f"durability: recovered segment "
                  f"{report.snapshot_segment}, replayed "
                  f"{report.replayed_events} events, restored "
                  f"{len(report.restored_attachments)} durable "
                  f"attachments", flush=True)
    try:
        asyncio.run(_run(runtime))
    except KeyboardInterrupt:
        pass
    stats = runtime.core.hub.stats()
    core = runtime.core
    print(f"served {core.clients_total} clients "
          f"({core.clients_rejected} rejected), "
          f"{stats.events_pushed} events pushed, "
          f"late_dropped={stats.late_events}")
    if durability is not None:
        dstats = durability.stats_dict()
        print(f"durability: {dstats['checkpoints_total']} checkpoints, "
              f"segment {dstats['segment']}, "
              f"wal_bytes={dstats['wal_bytes']}")
    if core.chaos is not None:
        cstats = core.chaos.stats()
        print(f"chaos: dropped={cstats['events_dropped']} "
              f"duplicated={cstats['events_duplicated']} "
              f"delayed={cstats['events_delayed']} "
              f"sink_errors={cstats['sink_errors_injected']} "
              f"wal_failures={cstats['wal_failures_injected']} "
              f"resets={core.connections_reset_total}")
    if core.heartbeats_sent or core.clients_reaped or \
            core.slow_disconnects or core.frames_dropped_total:
        print(f"resilience: {core.heartbeats_sent} heartbeats, "
              f"{core.clients_reaped} idle clients reaped, "
              f"{core.slow_disconnects} slow consumers dropped, "
              f"{core.frames_dropped_total} frames shed")
    if trace is not None:
        records = list(trace.records)
        print(f"trace: last {len(records)} interception records")
        for record in records:
            print(f"  {record}")
    if args.stats_json:
        payload = json.dumps(stats.to_dict(), indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(payload)
        else:
            Path(args.stats_json).write_text(payload + "\n",
                                             encoding="utf-8")
            print(f"stats: wrote {args.stats_json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve many queries over one shared ingestion pass.

    One decode + one reorder stage feed every attached query; each
    attachment runs its own engine session (isolated ledger and stats)
    and prints its matches tagged by query name the moment they
    validate."""
    from repro.hub import StreamHub

    if args.tcp or args.ws or args.http:
        return cmd_serve_network(args)
    if not args.data:
        raise SystemExit(
            "serve needs --data in pipe mode (or a network listener "
            "via --tcp/--ws)")
    specs = _parse_query_specs(args.query)
    if not specs:
        raise SystemExit("need at least one --query [name=]file")
    middleware, validation, ratelimit, metrics, trace = \
        _serve_middleware(args)
    counts: dict[str, int] = {}

    def make_sink(name: str):
        def sink(ce) -> None:
            counts[name] = counts.get(name, 0) + 1
            print(f"[{name}] match #{counts[name]}: {ce!r}", flush=True)
        return sink

    dhub = None
    if args.wal:
        from repro.durability import DurableHub

        # restored attachments re-sink into the same tagged printer
        dhub = DurableHub(
            args.wal, checkpoint_every=args.checkpoint_every,
            fsync=args.wal_fsync,
            slack=args.slack if args.slack is not None else 0.0,
            share=not args.no_share, middleware=middleware,
            sink_provider=lambda record: make_sink(record["name"]))
        hub = dhub.hub
        if hub._flushed:
            raise SystemExit(
                f"--wal {args.wal}: this WAL holds a completed (flushed) "
                f"run; point --wal at a fresh directory")
        report = dhub.recovery_report
        if report is not None and report.recovered:
            print(f"durability: recovered segment "
                  f"{report.snapshot_segment}, replayed "
                  f"{report.replayed_events} events, suppressed "
                  f"{report.suppressed_matches} already-delivered "
                  f"matches", flush=True)
    else:
        hub = StreamHub(
            slack=args.slack if args.slack is not None else 0.0,
            share=not args.no_share, middleware=middleware)

    try:
        restored = {attachment.name for attachment in hub.attachments}
        for name, path in specs:
            if name in restored:
                print(f"[{name}] restored from WAL", flush=True)
                continue
            query = _load_query(path, args.param, name=name)
            counts.setdefault(name, 0)
            # the sequential engine takes no speculation config; passing
            # one would needlessly disqualify the attachment from the
            # hub's cross-query optimizer (custom engine options opt out)
            options = {} if args.engine == "sequential" \
                else {"config": _make_config(args)}
            if dhub is not None:
                dhub.attach(query, engine=args.engine, name=name,
                            sink=make_sink(name), **options)
            else:
                hub.attach(query, engine=args.engine, name=name,
                           sink=make_sink(name), **options)
    except ValueError as error:
        raise SystemExit(f"bad --query spec: {error}") from None

    if dhub is not None:
        try:
            for event in _iter_csv_events(args):
                dhub.push(event)
        finally:
            dhub.close()
    else:
        with hub:
            for event in _iter_csv_events(args):
                hub.push(event)
    stats = hub.stats()
    for attachment in stats.attachments:
        print(f"{attachment.name}: {attachment.matches_emitted} complex "
              f"events from {attachment.events_delivered} streamed events "
              f"({attachment.engine})")
    print(f"served {len(specs)} queries over {hub.events_pushed} events "
          f"in one ingestion pass (late_dropped={hub.late_events})")
    sharing = stats.sharing
    if sharing is not None:
        state = "on" if sharing.enabled else "off"
        print(f"sharing {state}: {sharing.shared_attachments} shared "
              f"attachments in {sharing.groups} groups, "
              f"{sharing.windows_shared} windows shared, "
              f"{sharing.prefix_events_saved} prefix events saved, "
              f"kernel memo {sharing.memo_hits}/"
              f"{sharing.memo_hits + sharing.memo_misses} hits")
    offered = sum(a.events_offered for a in stats.attachments)
    skipped = sum(a.events_skipped_by_index for a in stats.attachments)
    print(f"routing: {offered} events offered, "
          f"{skipped} skipped by type index")
    if dhub is not None:
        dstats = dhub.manager.stats_dict()
        print(f"durability: {dstats['checkpoints_total']} checkpoints, "
              f"segment {dstats['segment']}, "
              f"wal_bytes={dstats['wal_bytes']} "
              f"(fsync={dstats['fsync']})")
    if validation is not None:
        print(f"validation: {validation.events_rejected} events "
              f"rejected, {validation.events_nulled} nulled "
              f"({validation.attributes_nulled} attributes)")
    if ratelimit is not None:
        print(f"rate limit: {ratelimit.shed_total} events shed "
              f"(rate={ratelimit.rate:g}/s burst={ratelimit.burst:g})")
    if trace is not None:
        records = list(trace.records)
        print(f"trace: last {len(records)} interception records")
        for record in records:
            print(f"  {record}")
    if metrics is not None:
        metrics.observe_stats(stats)
        if dhub is not None:
            metrics.observe_durability(dhub.manager.stats_dict())
        print(metrics.render(), end="")
    if args.stats_json:
        payload = json.dumps(stats.to_dict(), indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(payload)
        else:
            Path(args.stats_json).write_text(payload + "\n",
                                             encoding="utf-8")
            print(f"stats: wrote {args.stats_json}")
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Connect to a serving runtime, subscribe queries from files, and
    tail their matches as JSON lines (one frame per line, so the output
    pipes straight into ``jq``/the CI smoke script)."""
    import asyncio

    from repro.server.client import (
        ReconnectingClient,
        ServerClient,
        ServerError,
    )

    host, port = _parse_hostport(args.connect, "--connect")
    specs = _parse_query_specs(args.query)
    if not specs:
        raise SystemExit("client needs at least one --query [name=]file")
    params = _parse_params(args.param)
    if args.reconnect and not (args.durable or
                               args.resume_from is not None):
        raise SystemExit("--reconnect needs --durable: gapless resume "
                         "works off the durable match cursor")

    async def _run() -> int:
        if args.reconnect:
            from repro.resilience import Backoff

            backoff = Backoff(initial=args.reconnect_delay,
                              max_delay=args.reconnect_max_delay,
                              max_retries=args.reconnect_max)
            try:
                client = await ReconnectingClient.connect(
                    host, port, transport=args.transport,
                    token=args.token, client="repro-cli",
                    backoff=backoff,
                    on_reconnect=lambda c: print(
                        f"client: reconnected "
                        f"(#{c.reconnects})", file=sys.stderr))
            except ServerError as error:
                print(f"server refused: {error}", file=sys.stderr)
                return 1
        else:
            client = await ServerClient.connect(host, port,
                                                transport=args.transport)
        matches = 0
        end_reason = None  # None = clean break (budget/finals/goodbye)
        try:
            if not args.reconnect:
                await client.hello(token=args.token, client="repro-cli")
            subscribed: set[str] = set()
            for name, path in specs:
                text = Path(path).read_text()
                if args.durable or args.resume_from is not None:
                    ack = await client.subscribe_durable(
                        text, name=name, engine=args.engine,
                        params=params or None,
                        resume_from=args.resume_from)
                    subscribed.add(ack["subscription"])
                    print(f"subscribed durable {name!r} at cursor "
                          f"{ack.get('cursor')}", file=sys.stderr)
                else:
                    subscribed.add(await client.subscribe(
                        text, name=name, engine=args.engine,
                        params=params or None, watermarks=True))
            if args.data:
                batch: list = []
                for event in _iter_csv_events(args):
                    batch.append(event)
                    if len(batch) >= args.push_batch:
                        await client.push_many(batch)
                        batch = []
                if batch:
                    await client.push_many(batch)
            if args.flush:
                await client.flush()
            finals: set[str] = set()
            while True:
                frame = await client.next_frame(timeout=args.timeout)
                if frame is None:
                    # a dead connection and an idle timeout both
                    # surface as None — `ended` tells them apart
                    end_reason = ("disconnect" if client.ended
                                  else "timeout")
                    break
                ftype = frame.get("type")
                if ftype == "match":
                    print(json.dumps(frame, separators=(",", ":")),
                          flush=True)
                    matches += 1
                    if args.max_matches is not None and \
                            matches >= args.max_matches:
                        break
                elif ftype == "watermark" and frame.get("final"):
                    finals.add(frame.get("subscription"))
                    if args.flush and finals >= subscribed:
                        break  # every subscription fully drained
                elif ftype == "goodbye":
                    end_reason = f"goodbye:{frame.get('reason', '?')}"
                    break
        except ServerError as error:
            print(f"server refused: {error}", file=sys.stderr)
            return 1
        finally:
            await client.close()
        print(f"client: {matches} matches from "
              f"{len(specs)} subscriptions", file=sys.stderr)
        if end_reason == "disconnect":
            if args.reconnect:
                print("client: gave up reconnecting", file=sys.stderr)
            else:
                print("client: connection ended unexpectedly "
                      "(use --reconnect to ride out server restarts)",
                      file=sys.stderr)
            return 1
        if end_reason == "timeout":
            print(f"client: no frame for {args.timeout:g}s, done",
                  file=sys.stderr)
        elif end_reason and end_reason.startswith("goodbye:"):
            print(f"client: server said goodbye "
                  f"({end_reason.split(':', 1)[1]})", file=sys.stderr)
        return 0

    return asyncio.run(_run())


def cmd_record(args: argparse.Namespace) -> int:
    """LIVE mode: run queries over a CSV stream exactly like pipe-mode
    serve, journaling hub config, attaches, ingests, and every emitted
    match (with its cursor) into one run log for later ``replay`` /
    ``verify-run``."""
    from repro.durability import recording_hub

    specs = _parse_query_specs(args.query)
    if not specs:
        raise SystemExit("need at least one --query [name=]file")
    hub, log = recording_hub(
        args.out, slack=args.slack if args.slack is not None else 0.0,
        share=not args.no_share)
    counts: dict[str, int] = {}

    def make_sink(name: str):
        def sink(ce) -> None:
            counts[name] = counts.get(name, 0) + 1
            if not args.quiet:
                print(f"[{name}] match #{counts[name]}: {ce!r}",
                      flush=True)
        return sink

    try:
        for name, path in specs:
            query = _load_query(path, args.param, name=name)
            counts[name] = 0
            options = {} if args.engine == "sequential" \
                else {"config": _make_config(args)}
            hub.attach(query, engine=args.engine, name=name,
                       sink=make_sink(name), **options)
    except ValueError as error:
        raise SystemExit(f"bad --query spec: {error}") from None
    try:
        with hub:
            for event in _iter_csv_events(args):
                hub.push(event)
    finally:
        log.close()
    for name, _path in specs:
        print(f"{name}: {counts.get(name, 0)} matches")
    print(f"recorded {log.events_recorded} events, "
          f"{log.matches_recorded} matches from {len(specs)} queries "
          f"to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """REPLAY mode: rebuild the hub from a run log's configuration
    records and re-execute the operation stream deterministically."""
    from repro.durability import ReplayError, replay_run

    share = {"on": True, "off": False, "recorded": None}[args.share]
    try:
        emits = replay_run(args.run, share=share)
    except (ReplayError, OSError) as error:
        raise SystemExit(f"replay failed: {error}") from None
    total = 0
    for name in sorted(emits):
        total += len(emits[name])
        print(f"{name}: {len(emits[name])} matches")
        for cursor, wire in emits[name][:args.show]:
            print(f"  #{cursor}: "
                  f"{json.dumps(wire, separators=(',', ':'))}")
    print(f"replayed {total} matches from {args.run}")
    return 0


def cmd_verify_run(args: argparse.Namespace) -> int:
    """VERIFY mode: replay a run log and compare every emitted match
    against the recorded stream; exits non-zero on any divergence."""
    from repro.durability import ReplayError, verify_run

    try:
        report = verify_run(args.run)
    except (ReplayError, OSError) as error:
        raise SystemExit(f"verify-run failed: {error}") from None
    if report.ok:
        print(f"OK: replay identical to recording "
              f"({report.matches_recorded} matches across "
              f"{report.attachments} attachments)")
        return 0
    print(f"DIVERGED: {len(report.divergences)} divergences "
          f"(recorded={report.matches_recorded} "
          f"replayed={report.matches_replayed})")
    for divergence in report.divergences[:args.show]:
        print(f"  {json.dumps(divergence, separators=(',', ':'))}")
    if len(report.divergences) > args.show:
        print(f"  ... and {len(report.divergences) - args.show} more")
    return 1


def _parse_stages(pairs: Sequence[str]) -> list[tuple[str, str]]:
    stages = []
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--stage needs name=queryfile, got {pair!r}")
        name, path = pair.split("=", 1)
        stages.append((name, path))
    return stages


def cmd_graph(args: argparse.Namespace) -> int:
    """Run a linear operator pipeline: source → stage1 → stage2 → ..."""
    stages = _parse_stages(args.stage)
    if not stages:
        raise SystemExit("need at least one --stage name=queryfile")
    events = load_events_csv(args.data)
    config = _make_config(args)
    op_engine = ENGINE_ALIASES[args.engine]

    graph = OperatorGraph()
    graph.add_source("stream")
    upstream = "stream"
    for name, path in stages:
        query = _load_query(path, args.param, name=name)
        try:
            graph.add_operator(Operator(name, query, engine=op_engine,
                                        config=config),
                               upstream=[upstream])
        except ValueError as error:
            raise SystemExit(f"bad --stage {name!r}: {error}") from None
        upstream = name

    started = time.perf_counter()
    run = graph.run({"stream": events})
    elapsed = time.perf_counter() - started
    print(f"pipeline ({args.engine}, k={args.k}, "
          f"scheduler={args.scheduler}): {len(events)} source events "
          f"in {elapsed:.2f}s")
    for name, _path in stages:
        print(f"  {name}: {len(run.of(name))} events emitted")

    if args.verify:
        reference = graph.run({"stream": events}, engine="sequential")
        final = stages[-1][0]
        got = [e.attributes.get("constituent_seqs") for e in run.of(final)]
        want = [e.attributes.get("constituent_seqs")
                for e in reference.of(final)]
        if got == want:
            print(f"OK: pipeline output identical to sequential "
                  f"({len(got)} events at {final!r})")
            return 0
        print(f"MISMATCH: sequential={len(want)} {args.engine}={len(got)} "
              f"events at {final!r}")
        return 1
    return 0


def _add_speculative_flags(parser: argparse.ArgumentParser,
                           default_k: int = 4) -> None:
    parser.add_argument("--k", type=int, default=default_k,
                        help="operator instances (speculative engines)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (sharded engine; 1 runs "
                             "the shards in-process)")
    parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                        default="topk",
                        help="scheduling strategy (speculative engines)")
    parser.add_argument("--param", action="append", default=[],
                        help="query parameter name=value (repeatable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPECTRE reproduction: speculative parallel CEP with "
                    "consumption policies")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset")
    generate.add_argument("--kind", choices=["nyse", "rand", "walk"],
                          default="nyse")
    generate.add_argument("--events", type=int, default=10_000)
    generate.add_argument("--symbols", type=int, default=300)
    generate.add_argument("--leading", type=int, default=16)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--flat", type=float, default=0.0,
                          help="probability of an unchanged quote (nyse)")
    generate.add_argument("--reversion", type=float, default=0.0,
                          help="mean reversion strength (walk)")
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_generate)

    run = commands.add_parser("run", help="run a query over a CSV stream")
    run.add_argument("--query", required=True,
                     help="file in extended MATCH-RECOGNIZE notation")
    run.add_argument("--data", required=True,
                     help="events CSV ('-' reads rows from stdin with "
                          "--follow)")
    run.add_argument("--engine", choices=list(RUN_ENGINES),
                     default="spectre")
    _add_speculative_flags(run)
    run.add_argument("--show", type=int, default=5,
                     help="complex events to print")
    run.add_argument("--follow", action="store_true",
                     help="streaming mode: push events one at a time "
                          "through a session and print matches as they "
                          "validate")
    run.add_argument("--poll", type=float, default=0.0,
                     help="with --follow on a file: seconds to wait for "
                          "appended rows at EOF (0 stops at EOF)")
    run.add_argument("--slack", type=float, default=None,
                     help="with --follow: out-of-order slack buffer "
                          "(time units) in front of the engine")
    run.set_defaults(func=cmd_run)

    verify = commands.add_parser(
        "verify",
        help="check a speculative engine's output equals the sequential "
             "engine")
    verify.add_argument("--query", required=True)
    verify.add_argument("--data", required=True)
    verify.add_argument("--engine", choices=list(SPECULATIVE_ENGINES),
                        default="spectre")
    _add_speculative_flags(verify)
    verify.set_defaults(func=cmd_verify)

    graph = commands.add_parser(
        "graph",
        help="run a linear operator pipeline (stage outputs feed the "
             "next stage) on any engine")
    graph.add_argument("--data", required=True, help="source events CSV")
    graph.add_argument("--stage", action="append", default=[],
                       help="pipeline stage name=queryfile (repeatable, "
                            "in order)")
    graph.add_argument("--engine", choices=list(GRAPH_ENGINES),
                       default="spectre")
    _add_speculative_flags(graph)
    graph.add_argument("--verify", action="store_true",
                       help="also run the pipeline sequentially and "
                            "compare final-stage outputs")
    graph.set_defaults(func=cmd_graph)

    serve = commands.add_parser(
        "serve",
        help="serve many queries concurrently over one shared "
             "ingestion pass (multi-query StreamHub)")
    serve.add_argument("--query", action="append", default=[],
                       help="query file, optionally name=file "
                            "(repeatable; one attachment each)")
    serve.add_argument("--data", default=None,
                       help="events CSV ('-' reads rows from stdin); "
                            "required in pipe mode, forbidden with "
                            "--tcp/--ws (clients push events instead)")
    serve.add_argument("--engine", choices=list(RUN_ENGINES),
                       default="spectre")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="serve the NDJSON wire protocol over TCP "
                            "(port 0 = ephemeral, printed on start)")
    serve.add_argument("--ws", default=None, metavar="HOST:PORT",
                       help="serve the wire protocol over WebSocket "
                            "(RFC 6455, one frame per message)")
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="observability listener: GET /metrics "
                            "(Prometheus text) and GET /healthz")
    serve.add_argument("--auth-token", default=None, metavar="TOKEN",
                       help="require this token in every client's "
                            "hello frame (network mode)")
    serve.add_argument("--max-clients", type=int, default=64,
                       help="refuse connections beyond this many "
                            "concurrent clients (network mode)")
    _add_speculative_flags(serve)
    serve.add_argument("--poll", type=float, default=0.0,
                       help="on a file: seconds to wait for appended "
                            "rows at EOF (0 stops at EOF)")
    serve.add_argument("--no-share", action="store_true",
                       help="disable the cross-query optimizer (type-"
                            "indexed routing, kernel interning, shared "
                            "NFA prefixes)")
    serve.add_argument("--slack", type=float, default=None,
                       help="shared out-of-order slack buffer (time "
                            "units) in front of every query")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="EVENTS_PER_SEC",
                       help="token-bucket limit on the shared ingestion "
                            "path; excess events are shed and counted")
    serve.add_argument("--rate-burst", type=float, default=None,
                       metavar="N",
                       help="bucket capacity for --rate-limit "
                            "(default: the rate)")
    serve.add_argument("--require", action="append", default=[],
                       metavar="ATTR[:TYPE]",
                       help="validate events: ATTR must be present, "
                            "optionally typed (float|int|str|bool); "
                            "repeatable")
    serve.add_argument("--invalid-policy", choices=("null", "reject"),
                       default="null",
                       help="--require failures: null the attribute "
                            "(SQL NULL semantics) or reject the event")
    serve.add_argument("--metrics", action="store_true",
                       help="collect Prometheus-style metrics on the "
                            "interception chain and print the text "
                            "exposition at exit")
    serve.add_argument("--trace", type=int, nargs="?", const=16,
                       default=None, metavar="N",
                       help="ring-buffer the last N interception "
                            "records and print them at exit "
                            "(default 16)")
    serve.add_argument("--stats-json", default=None, metavar="FILE",
                       help="write the final hub stats snapshot as "
                            "JSON ('-' for stdout)")
    serve.add_argument("--wal", default=None, metavar="DIR",
                       help="durability: write-ahead log + snapshot "
                            "directory; restarting over the same "
                            "directory recovers state exactly-once "
                            "(both pipe and network mode)")
    serve.add_argument("--checkpoint-every", type=int, default=10_000,
                       metavar="N",
                       help="ingested events between snapshot "
                            "checkpoints (with --wal)")
    serve.add_argument("--wal-fsync", choices=("always", "batch", "never"),
                       default="batch",
                       help="WAL fsync policy: always (fsync per "
                            "append), batch (fsync at checkpoints; "
                            "OS-buffered between), never")
    serve.add_argument("--wal-keep-segments", type=int, default=None,
                       metavar="K",
                       help="GC WAL segments superseded by a snapshot, "
                            "keeping K extra segments of durable-resume "
                            "history behind the checkpoint (default: "
                            "keep everything)")
    serve.add_argument("--heartbeat", type=float, default=None,
                       metavar="SECONDS",
                       help="send a ping to every idle client this "
                            "often (clients answer with pong)")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="disconnect clients silent for this long "
                            "(goodbye reason 'idle_timeout'; pongs "
                            "count as traffic)")
    serve.add_argument("--slow-consumer",
                       choices=("block", "drop_oldest", "disconnect"),
                       default="block",
                       help="policy when a client's send queue fills: "
                            "block ingestion (default), shed its oldest "
                            "queued match, or disconnect it with a "
                            "goodbye")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for all fault injectors (chaos runs "
                            "are deterministic per seed)")
    serve.add_argument("--chaos-drop", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos: drop this fraction of pushed events")
    serve.add_argument("--chaos-dup", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos: duplicate this fraction of events")
    serve.add_argument("--chaos-delay", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos: hold this fraction of events and "
                            "release them later (reorders the stream)")
    serve.add_argument("--chaos-sink-error", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos: make this fraction of sink "
                            "deliveries raise")
    serve.add_argument("--chaos-wal-fail", type=float, default=0.0,
                       metavar="RATE",
                       help="chaos: fail this fraction of WAL appends "
                            "transiently (absorbed by write retries)")
    serve.add_argument("--chaos-reset-after", type=int, default=None,
                       metavar="N",
                       help="chaos: abruptly reset a connection every "
                            "N handled frames")
    serve.set_defaults(func=cmd_serve)

    client = commands.add_parser(
        "client",
        help="connect to a serving runtime, subscribe queries, and "
             "tail matches as JSON lines")
    client.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="server address (a --tcp or --ws listener)")
    client.add_argument("--transport", choices=("tcp", "ws"),
                        default="tcp")
    client.add_argument("--token", default=None,
                        help="auth token for the hello frame")
    client.add_argument("--query", action="append", default=[],
                        help="query file, optionally name=file "
                             "(repeatable; one subscription each)")
    client.add_argument("--param", action="append", default=[],
                        help="query parameter name=value (repeatable, "
                             "applies to every subscription)")
    client.add_argument("--engine", choices=list(RUN_ENGINES),
                        default=None,
                        help="engine for the subscriptions (default: "
                             "the server's)")
    client.add_argument("--data", default=None,
                        help="events CSV to push after subscribing "
                             "('-' reads rows from stdin)")
    client.add_argument("--poll", type=float, default=0.0,
                        help="with --data on a file: seconds to wait "
                             "for appended rows at EOF (0 stops)")
    client.add_argument("--push-batch", type=int, default=256,
                        metavar="N", help="events per push_many frame")
    client.add_argument("--flush", action="store_true",
                        help="send a flush after --data and exit once "
                             "every subscription's final watermark "
                             "arrives")
    client.add_argument("--max-matches", type=int, default=None,
                        metavar="N", help="exit after N match frames")
    client.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="exit when no frame arrives for this long")
    client.add_argument("--durable", action="store_true",
                        help="durable subscriptions: the server keeps "
                             "the attachment and its WAL cursor across "
                             "disconnects and restarts (needs serve "
                             "--wal; query names are the resume keys)")
    client.add_argument("--resume-from", type=int, default=None,
                        metavar="CURSOR",
                        help="resume a durable subscription: replay "
                             "WAL-logged matches with cursor > CURSOR, "
                             "then continue live (implies --durable)")
    client.add_argument("--reconnect", action="store_true",
                        help="auto-reconnect on unexpected disconnect "
                             "with exponential backoff, re-subscribing "
                             "durable queries from the last delivered "
                             "cursor (needs --durable)")
    client.add_argument("--reconnect-max", type=int, default=None,
                        metavar="N",
                        help="give up after N reconnect attempts "
                             "(default: retry forever)")
    client.add_argument("--reconnect-delay", type=float, default=0.2,
                        metavar="SECONDS",
                        help="initial reconnect backoff delay")
    client.add_argument("--reconnect-max-delay", type=float, default=5.0,
                        metavar="SECONDS",
                        help="backoff delay cap")
    client.set_defaults(func=cmd_client)

    record = commands.add_parser(
        "record",
        help="LIVE: run queries over a CSV stream while journaling "
             "everything into a replayable run log")
    record.add_argument("--out", required=True, metavar="RUNLOG",
                        help="run log file to write")
    record.add_argument("--query", action="append", default=[],
                        help="query file, optionally name=file "
                             "(repeatable; one attachment each)")
    record.add_argument("--data", required=True,
                        help="events CSV ('-' reads rows from stdin)")
    record.add_argument("--engine", choices=list(RUN_ENGINES),
                        default="sequential")
    _add_speculative_flags(record)
    record.add_argument("--poll", type=float, default=0.0,
                        help="on a file: seconds to wait for appended "
                             "rows at EOF (0 stops at EOF)")
    record.add_argument("--slack", type=float, default=None,
                        help="out-of-order slack buffer (time units)")
    record.add_argument("--no-share", action="store_true",
                        help="disable the cross-query optimizer")
    record.add_argument("--quiet", action="store_true",
                        help="suppress per-match printing")
    record.set_defaults(func=cmd_record)

    replay = commands.add_parser(
        "replay",
        help="REPLAY: re-execute a recorded run deterministically and "
             "print the reproduced match streams")
    replay.add_argument("--run", required=True, metavar="RUNLOG")
    replay.add_argument("--show", type=int, default=0, metavar="N",
                        help="print the first N matches per attachment")
    replay.add_argument("--share", choices=("recorded", "on", "off"),
                        default="recorded",
                        help="override the recorded sharing-optimizer "
                             "setting (identities must not change)")
    replay.set_defaults(func=cmd_replay)

    verify_run_parser = commands.add_parser(
        "verify-run",
        help="VERIFY: replay a recorded run and compare every match "
             "against the recording; non-zero exit on divergence")
    verify_run_parser.add_argument("--run", required=True,
                                   metavar="RUNLOG")
    verify_run_parser.add_argument("--show", type=int, default=5,
                                   metavar="N",
                                   help="divergences to print")
    verify_run_parser.set_defaults(func=cmd_verify_run)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
