"""Cross-query optimizer for the StreamHub.

A hub serving N attachments over one feed still paid N× the matching
cost: every attachment re-sorted nothing (PR 4 deduped that) but
re-split, re-classified and re-matched every event from scratch.  This
module makes the fan-out superlinear for query families that share
structure, in three stacked layers:

1. **Type-indexed routing** (:class:`RoutingIndex`): one ``etype →
   interested attachments`` index over each plan's ``relevant_types``.
   Each released chunk is classified once; attachments provably
   indifferent to an event never see it.  Skipping is only performed
   where it cannot change results: attachments whose window
   decomposition is *data-driven* (``OnPredicate`` start + ``TimeScope``
   scope, with a start predicate that declares its event type).
   Count/slide windows are positional — dropping an event would shift
   every later window — so those attachments stay on the offer-all
   path, and their sharing happens one level down, inside a
   :class:`SharedGroup` whose type index skips per *member* instead of
   per attachment.
2. **Kernel interning** (in :mod:`repro.matching.kernel`): identical
   predicate specs compile to one shared kernel with a process-unique
   ``kernel_id``, so "same predicate" is an int comparison.  Kernels
   whose spec references no earlier binding are ``binding_free``; the
   group memoizes their per-event truth value across queries and
   overlapping windows (:meth:`SharedGroup._kernel_true`).
3. **NFA prefix sharing** (:class:`SharedGroup`): attachments whose
   compiled element tables agree on window spec, policies and a common
   element/guard prefix are grouped under *one* splitter and *one*
   shared prefix stepper per window.  The stepper advances a single
   :class:`~repro.matching.nfa.NFAPartialMatch` over the longest common
   prefix; a member leaves the shared trajectory only when something
   member-specific happens — its suffix element binds (fork a private
   detector seeded from the shared bindings), its boundary guard fires
   (fork a fresh private detector), or its whole pattern is the prefix
   (complete directly, full deduplication).

Safety: each layer disables itself whenever its preconditions fail.

* Sharing requires ``FIRST`` selection, ``max_matches=1``, no
  consumption (consumption couples windows across queries through the
  per-query ledger), no anchoring, no derive, a compiled plan and fully
  interned kernels, and an ``EverySlide``/``CountScope`` window.
  Anything else — spectre engines, UDF queries, interpreted plans
  (``REPRO_COMPILE=0``), Kleene-consuming policies — attaches exactly
  as before.
* Per-attachment isolation is preserved: every member keeps its own
  result counters, window numbering, sinks, queue and admission
  watermark; the *identities* of emitted complex events equal an
  independent run (``ComplexEvent.identity()`` is window-id free, and
  member-local window ids equal the alone run's numbering).
* ``share=False`` on the hub or ``REPRO_SHARE=0`` in the environment
  switches every layer off for differential testing.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from dataclasses import dataclass
from heapq import merge as heap_merge
from typing import Any, Callable, Iterable, Optional

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.matching.kernel import (
    KIND_ATOM,
    KIND_KLEENE,
    KIND_SET,
    NEVER_KERNEL,
    ElementKernel,
    QueryPlan,
    kernel_id,
)
from repro.matching.nfa import NFADetector, NFAPartialMatch
from repro.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.patterns.query import Query
from repro.middleware.sinks import SinkDispatchMiddleware
from repro.sequential.engine import SequentialResult
from repro.streaming.session import Session
from repro.windows.specs import CountScope, EverySlide, OnPredicate, TimeScope
from repro.windows.splitter import Splitter
from repro.windows.window import Window

_NONE_POLICY = ConsumptionPolicy.none()
_EMPTY_EVENTS: tuple[Event, ...] = ()


def share_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the sharing flag: explicit argument wins, then the
    ``REPRO_SHARE`` environment variable, default on."""
    if override is not None:
        return override
    value = os.environ.get("REPRO_SHARE", "1").strip().lower()
    return value not in ("0", "false", "no", "off")


# ---------------------------------------------------------------------------
# plan signatures
# ---------------------------------------------------------------------------


def _element_sig(element: ElementKernel) -> Optional[tuple]:
    """Structural identity of one compiled element, or ``None`` when any
    kernel is not interned (opaque predicate / interpreted plan)."""
    if element.kind == KIND_SET:
        ids = tuple((name, kernel_id(m)) for name, m in element.members)
        if any(kid is None for _name, kid in ids):
            return None
        return (KIND_SET, ids)
    kid = kernel_id(element.matcher)
    if kid is None:
        return None
    return (element.kind, element.name, kid)


def _guard_sig(guards: tuple) -> Optional[tuple]:
    ids = tuple(kernel_id(m) for m in guards)
    if any(kid is None for kid in ids):
        return None
    return ids


def plan_signature(plan: QueryPlan) -> Optional[tuple]:
    """Per-position ``(element, guards)`` identity tuple, or ``None``
    when the plan contains any non-interned kernel."""
    sig = []
    for element, guards in zip(plan.elements, plan.guards):
        esig = _element_sig(element)
        gsig = _guard_sig(guards)
        if esig is None or gsig is None:
            return None
        sig.append((esig, gsig))
    return tuple(sig)


def member_signature(query: Query, engine: str) -> Optional[tuple]:
    """The query's sharing signature, or ``None`` when it must take the
    independent (unshared) path.  This is the safety gate for layer (c);
    every condition here corresponds to a semantic coupling that would
    break per-attachment ≡ alone-run parity if shared."""
    if engine != "sequential":
        return None  # speculative engines have their own window lifecycle
    plan = query.plan
    opts = query.nfa_options
    if plan is None or not plan.compiled or opts is None:
        return None  # UDF query or interpreted escape hatch
    if opts.max_matches != 1 or opts.anchored or opts.has_derive:
        return None
    if query.selection is not SelectionPolicy.FIRST:
        return None
    if not query.consumption.is_none:
        return None  # consumption couples windows through the ledger
    window = query.window
    if not isinstance(window.start, EverySlide) or \
            not isinstance(window.scope, CountScope):
        return None  # predicate/time windows carry opaque start closures
    return plan_signature(plan)


def routed_types_for(query: Query) -> Optional[frozenset]:
    """Event types the hub may route to this attachment exclusively, or
    ``None`` for the offer-all path.

    Hub-level skipping is only safe when the attachment's window
    decomposition cannot depend on the skipped events: predicate-opened,
    time-scoped windows whose start predicate declares the single event
    type it accepts (``predicate.relevant_etype``, as interned kernels
    and the helpers in this repo stamp) — positions never matter, and an
    event outside ``relevant_types`` can neither open a window, extend a
    match, trip a guard, nor be consumed."""
    plan = query.plan
    if plan is None or not plan.compiled or plan.relevant_types is None:
        return None
    window = query.window
    if not isinstance(window.start, OnPredicate) or \
            not isinstance(window.scope, TimeScope):
        return None
    start_type = getattr(window.start.predicate, "relevant_etype", None)
    if start_type is None or start_type not in plan.relevant_types:
        return None
    return plan.relevant_types


# ---------------------------------------------------------------------------
# layer (a): the hub-level routing index
# ---------------------------------------------------------------------------


class RoutingIndex:
    """Incrementally maintained ``etype → interested attachment names``.

    Entries with ``types=None`` live on the *offer-all* list (their
    events are never filtered).  The index is rebuilt incrementally on
    attach/detach; :meth:`snapshot` and :meth:`rebuild` exist so the
    differential suite can assert *index state == from-scratch rebuild*
    after every mutation."""

    def __init__(self) -> None:
        self._by_type: dict[str, list[str]] = {}
        self._types_of: dict[str, Optional[frozenset]] = {}
        self._offer_all: set[str] = set()

    def add(self, name: str, types: Optional[frozenset]) -> None:
        if name in self._types_of:
            raise ValueError(f"routing entry {name!r} already present")
        self._types_of[name] = types
        if types is None:
            self._offer_all.add(name)
            return
        for etype in types:
            self._by_type.setdefault(etype, []).append(name)

    def remove(self, name: str) -> None:
        types = self._types_of.pop(name, None)
        self._offer_all.discard(name)
        if types is None:
            return
        for etype in types:
            names = self._by_type.get(etype)
            if names is not None:
                names.remove(name)
                if not names:
                    del self._by_type[etype]

    @property
    def has_routed(self) -> bool:
        return bool(self._by_type)

    def interested(self, etype: str) -> list[str]:
        """Routed attachments interested in ``etype`` (offer-all
        attachments are not listed — they receive everything)."""
        return self._by_type.get(etype, [])

    def buckets(self, events: Iterable[Event]) -> dict[str, list[Event]]:
        """Classify a released chunk once: per routed attachment, the
        sub-chunk it should see."""
        out: dict[str, list[Event]] = {}
        by_type = self._by_type
        for event in events:
            names = by_type.get(event.etype)
            if not names:
                continue
            for name in names:
                bucket = out.get(name)
                if bucket is None:
                    out[name] = [event]
                else:
                    bucket.append(event)
        return out

    def snapshot(self) -> tuple:
        """Canonical, comparison-friendly state."""
        return (
            frozenset(self._offer_all),
            frozenset((etype, frozenset(names))
                      for etype, names in self._by_type.items()),
        )

    @classmethod
    def rebuild(cls, entries: Iterable[tuple[str, Optional[frozenset]]]
                ) -> "RoutingIndex":
        """A from-scratch index over ``(name, types)`` pairs — the test
        oracle for the incremental maintenance."""
        index = cls()
        for name, types in entries:
            index.add(name, types)
        return index


# ---------------------------------------------------------------------------
# layer (c): shared detector groups
# ---------------------------------------------------------------------------

_TRACKING = 0
_PRIVATE = 1
_DONE = 2


class GroupMember:
    """One attachment's membership in a :class:`SharedGroup`.

    Owns everything per-attachment: the result counters, the
    member-local window numbering (equal to the alone run's), and the
    pending-match buffer the hub drains after every group ingest."""

    __slots__ = ("uid", "name", "query", "plan", "sig", "group",
                 "attachment", "admission_position", "live",
                 "result", "_window_seq", "_pending")

    def __init__(self, uid: int, name: str, query: Query, sig: tuple,
                 group: "SharedGroup") -> None:
        self.uid = uid
        self.name = name
        self.query = query
        self.plan = query.plan
        self.sig = sig
        self.group = group
        self.attachment = None  # backref set by StreamHub.attach
        self.admission_position: Optional[int] = None
        self.live = True
        self.result = SequentialResult(
            complex_events=[], windows=0, groups_created=0,
            groups_completed=0, events_fed=0, events_skipped_consumed=0)
        self._window_seq = 0
        self._pending: list[ComplexEvent] = []

    @property
    def size(self) -> int:
        return self.plan.size

    def _emit(self, window_id: int, constituents: tuple[Event, ...]) -> None:
        self.result.groups_completed += 1
        match = ComplexEvent(query_name=self.query.name, window_id=window_id,
                             constituents=constituents, attributes={})
        self.result.complex_events.append(match)
        self._pending.append(match)

    def drain_pending(self) -> list[ComplexEvent]:
        pending, self._pending = self._pending, []
        return pending

    def watermark_value(self, fallback: float) -> float:
        return self.group.member_watermark(self, fallback)


class _MemberRun:
    """One member's state inside one shared window run."""

    __slots__ = ("member", "wid", "state", "detector", "belem", "bguards")

    def __init__(self, member: GroupMember, wid: int, p: int) -> None:
        self.member = member
        self.wid = wid
        self.state = _TRACKING
        self.detector: Optional[NFADetector] = None
        if member.size > p:
            self.belem = member.plan.elements[p]
            self.bguards = member.plan.guards[p]
        else:
            self.belem = None  # the whole pattern IS the prefix
            self.bguards = ()


class _ClusterPlan:
    """Cached per-cluster compilation: common prefix length, the prefix
    stepping plan (member elements[:p] plus a never-matching sentinel so
    a trailing Kleene prefix keeps absorbing instead of normalizing to
    "complete"), and the union relevance filter."""

    __slots__ = ("p", "prefix_plan", "last_kleene", "union_types")

    def __init__(self, cluster: list[GroupMember]) -> None:
        if len(cluster) == 1:
            self.p = 0
            self.prefix_plan = None
            self.last_kleene = False
        else:
            sigs = [m.sig for m in cluster]
            p = 0
            limit = min(len(sig) for sig in sigs)
            first = sigs[0]
            while p < limit and all(sig[p] == first[p] for sig in sigs[1:]):
                p += 1
            assert p >= 1, "clusters are keyed by their first element"
            self.p = p
            base = cluster[0].plan
            sentinel = ElementKernel(KIND_ATOM, "__never__", NEVER_KERNEL,
                                     (), 1)
            self.prefix_plan = QueryPlan(
                base.pattern, base.elements[:p] + (sentinel,),
                base.guards[:p] + ((),), None, True)
            self.last_kleene = base.elements[p - 1].kind == KIND_KLEENE
        union: Optional[set] = set()
        for member in cluster:
            types = member.plan.relevant_types
            if types is None:
                union = None
                break
            union.update(types)
        self.union_types = frozenset(union) if union is not None else None


def _fork_match(shared: NFAPartialMatch, member: GroupMember
                ) -> NFAPartialMatch:
    """A member-private partial match seeded from the shared prefix
    trajectory.  Kleene bindings are lists — copied, so the shared match
    keeps absorbing without mutating the fork."""
    match = NFAPartialMatch(0, member.plan, _NONE_POLICY)
    match.pos = shared.pos
    match.bindings = {
        name: (value[:] if value.__class__ is list else value)
        for name, value in shared.bindings.items()
    }
    match.bound_order = list(shared.bound_order)
    return match


def _continuation_detector(member: GroupMember,
                           match: NFAPartialMatch) -> NFADetector:
    """An NFA detector resumed mid-window from a seeded partial match —
    from here on the member runs exactly its alone-run automaton."""
    detector = NFADetector(
        member.query.pattern, selection=SelectionPolicy.FIRST,
        consumption=_NONE_POLICY, max_matches=1, anchor=None,
        derive=None, plan=member.plan)
    detector._active = [match]
    detector._next_match_id = 1
    return detector


def _fresh_detector(member: GroupMember) -> NFADetector:
    return NFADetector(
        member.query.pattern, selection=SelectionPolicy.FIRST,
        consumption=_NONE_POLICY, max_matches=1, anchor=None,
        derive=None, plan=member.plan)


@dataclass(frozen=True)
class SharingStats:
    """Hub-level sharing counters (part of ``HubStats``)."""

    enabled: bool
    groups: int
    shared_attachments: int
    windows_shared: int
    prefix_events_saved: int
    memo_hits: int
    memo_misses: int

    def to_dict(self) -> dict:
        """JSON-safe snapshot (all fields are already scalars)."""
        return {
            "enabled": self.enabled,
            "groups": self.groups,
            "shared_attachments": self.shared_attachments,
            "windows_shared": self.windows_shared,
            "prefix_events_saved": self.prefix_events_saved,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }


class SharedGroup:
    """One splitter + one type index + one shared prefix stepper serving
    every member with the same window spec.

    The group ingests the hub's released events exactly once (positions
    are group-local; ``origin`` maps them back to hub positions).  Each
    closed window is processed one-shot — the same moment a standalone
    ``SequentialSession`` would process it — for the members admitted at
    or before its start.  Members are clustered by their first element's
    signature: clusters of one run a plain private detector over the
    member's relevant event positions (the type index makes that scan
    sparse); clusters of two or more advance one shared prefix match and
    fork member-private continuations only at the suffix boundary."""

    def __init__(self, window_spec) -> None:
        self.window_spec = window_spec
        self.members: list[GroupMember] = []
        self.origin: Optional[int] = None  # hub position of local pos 0
        self._next: Optional[int] = None   # next hub position to ingest
        self._splitter: Optional[Splitter] = None
        self._types: dict[str, list[int]] = {}
        self._last_processed = -1
        self._last_ts = float("-inf")
        self._uids = 0
        self._cluster_cache: dict[tuple, _ClusterPlan] = {}
        self._memo: dict[tuple, bool] = {}
        # observability
        self.windows_shared = 0
        self.prefix_events_saved = 0
        self.memo_hits = 0
        self.memo_misses = 0

    # -- membership --------------------------------------------------------

    def add_member(self, name: str, query: Query, sig: tuple) -> GroupMember:
        self._uids += 1
        member = GroupMember(self._uids, name, query, sig, self)
        self.members.append(member)
        self._cluster_cache.clear()
        return member

    def admit(self, member: GroupMember, position: int) -> None:
        """The hub admitted ``member`` at (slide-aligned) ``position``."""
        member.admission_position = position
        if self.origin is None:
            self.origin = position
            self._next = position
            self._splitter = Splitter(self.window_spec)

    def remove(self, member: GroupMember) -> None:
        member.live = False
        if member in self.members:
            self.members.remove(member)
            self._cluster_cache.clear()

    # -- ingestion ---------------------------------------------------------

    def ingest(self, events: list[Event], first_position: int) -> None:
        """Feed a released chunk (hub positions ``first_position...``);
        process every window it closed.  Matches land in each member's
        pending buffer for the hub to deliver."""
        if self.origin is None or not self.members:
            return
        skip = self._next - first_position
        if skip >= len(events):
            return
        if skip > 0:
            events = events[skip:]
        self._memo.clear()
        splitter = self._splitter
        stream = splitter.stream
        types = self._types
        for event in events:
            position = len(stream)
            splitter.ingest(event)
            positions = types.get(event.etype)
            if positions is None:
                types[event.etype] = [position]
            else:
                positions.append(position)
        self._next += len(events)
        self._last_ts = events[-1].timestamp
        closed = splitter.drain_closed()
        if closed:
            for window in closed:
                self._process_window(window)
                self._last_processed = window.window_id
            self._collect_garbage()

    def _collect_garbage(self) -> None:
        self._splitter.retire(self._last_processed)
        self._splitter.trim_to_live()
        horizon = self._splitter.stream.offset
        for etype, positions in self._types.items():
            if positions and positions[0] < horizon:
                del positions[:bisect_left(positions, horizon)]

    # -- finishing ---------------------------------------------------------

    def finish_member(self, member: GroupMember) -> list[ComplexEvent]:
        """End-of-stream for one member (hub flush or mid-stream detach):
        run its remaining (open/truncated) windows privately — exactly
        what a standalone session's ``flush`` does — then drop it."""
        out = member.drain_pending()
        if member.live and member.admission_position is not None and \
                self._splitter is not None:
            length = len(self._splitter.stream)
            for window in self._splitter.windows:
                if window.window_id <= self._last_processed:
                    continue
                start_hub = self.origin + window.start_pos
                if start_hub < member.admission_position:
                    continue
                end = window.end_pos
                end = length if end is None else min(end, length)
                wid = member._window_seq
                member._window_seq += 1
                member.result.windows += 1
                events = self._events_between(
                    window.start_pos, end, member.plan.relevant_types)
                self._run_private(member, wid, events)
        self.remove(member)
        out.extend(member.drain_pending())
        return out

    def member_watermark(self, member: GroupMember, fallback: float) -> float:
        if member.admission_position is None or self._splitter is None:
            return fallback if self._last_ts == float("-inf") \
                else self._last_ts
        starts = (
            window.start_event.timestamp
            for window in self._splitter.windows
            if window.window_id > self._last_processed
            and self.origin + window.start_pos >= member.admission_position
        )
        return min(starts, default=self._last_ts)

    # -- window processing -------------------------------------------------

    def _process_window(self, window: Window) -> None:
        start_hub = self.origin + window.start_pos
        participants = [
            member for member in self.members
            if member.admission_position is not None
            and member.admission_position <= start_hub
        ]
        if not participants:
            return
        wids: dict[int, int] = {}
        for member in participants:
            wids[member.uid] = member._window_seq
            member._window_seq += 1
            member.result.windows += 1
        clusters: dict[tuple, list[GroupMember]] = {}
        for member in participants:
            clusters.setdefault(member.sig[0], []).append(member)
        for cluster in clusters.values():
            key = tuple(member.uid for member in cluster)
            cplan = self._cluster_cache.get(key)
            if cplan is None:
                cplan = _ClusterPlan(cluster)
                self._cluster_cache[key] = cplan
            if cplan.p == 0:
                member = cluster[0]
                events = self._events_between(
                    window.start_pos, window.end_pos,
                    cplan.union_types)
                self._run_private(member, wids[member.uid], events)
                size = window.end_pos - window.start_pos
                self._account_prefilter(cluster, window, cplan, size)
            else:
                self._run_cluster(window, cluster, cplan, wids)

    def _account_prefilter(self, cluster: list[GroupMember], window: Window,
                           cplan: _ClusterPlan, span: int) -> None:
        if cplan.union_types is None:
            return
        scanned = sum(
            len(self._positions_between(t, window.start_pos, window.end_pos))
            for t in cplan.union_types)
        for member in cluster:
            member.result.events_prefiltered += max(0, span - scanned)

    def _positions_between(self, etype: str, start: int, end: int
                           ) -> list[int]:
        positions = self._types.get(etype)
        if not positions:
            return []
        low = bisect_left(positions, start)
        high = bisect_left(positions, end)
        return positions[low:high]

    def _events_between(self, start: int, end: int,
                        types: Optional[frozenset]) -> Iterable[Event]:
        """The window slice, restricted to ``types`` via the group's
        type index (sparse iteration) when a filter is available."""
        stream = self._splitter.stream
        if types is None:
            return stream.slice(start, end)
        slices = [self._positions_between(etype, start, end)
                  for etype in types]
        slices = [s for s in slices if s]
        if not slices:
            return _EMPTY_EVENTS
        if len(slices) == 1:
            positions = slices[0]
        else:
            positions = heap_merge(*slices)
        return [stream[position] for position in positions]

    # -- private (unshared) member run ------------------------------------

    def _run_private(self, member: GroupMember, wid: int,
                     events: Iterable[Event]) -> None:
        detector = _fresh_detector(member)
        result = member.result
        for event in events:
            if detector.done:
                break
            result.events_fed += 1
            feedback = detector.process(event)
            if feedback.is_empty:
                continue
            if feedback.created:
                result.groups_created += len(feedback.created)
            for completion in feedback.completed:
                member._emit(wid, completion.constituents)
        detector.close()

    # -- shared prefix run -------------------------------------------------

    def _kernel_true(self, matcher: Callable, event: Event,
                     bindings) -> bool:
        if getattr(matcher, "binding_free", False):
            key = (matcher.kernel_id, event.seq)
            memo = self._memo
            cached = memo.get(key)
            if cached is not None:
                self.memo_hits += 1
                return cached
            value = bool(matcher(event, bindings))
            memo[key] = value
            self.memo_misses += 1
            return value
        return matcher(event, bindings)

    def _element_accepts(self, element: ElementKernel, event: Event,
                         bindings) -> bool:
        if element.kind == KIND_SET:
            return any(self._kernel_true(m, event, bindings)
                       for _name, m in element.members)
        return self._kernel_true(element.matcher, event, bindings)

    def _complete_prefix_members(self, shared: NFAPartialMatch,
                                 tracking: list[_MemberRun],
                                 scanned: int) -> bool:
        """The prefix just became satisfied: members whose whole pattern
        is the prefix complete right now (minimal-match semantics)."""
        changed = False
        snapshot: Optional[tuple[Event, ...]] = None
        for run in tracking:
            if run.belem is not None or run.state != _TRACKING:
                continue
            if snapshot is None:
                snapshot = tuple(e for _name, e in shared.bound_order)
            run.member._emit(run.wid, snapshot)
            run.member.result.events_fed += scanned
            run.state = _DONE
            changed = True
        return changed

    def _run_cluster(self, window: Window, cluster: list[GroupMember],
                     cplan: _ClusterPlan, wids: dict[int, int]) -> None:
        p = cplan.p
        prefix_plan = cplan.prefix_plan
        last_kleene = cplan.last_kleene
        runs = [_MemberRun(m, wids[m.uid], p) for m in cluster]
        tracking = list(runs)
        privates: list[_MemberRun] = []
        shared: Optional[NFAPartialMatch] = None
        self.windows_shared += 1
        scanned = 0
        events = self._events_between(window.start_pos, window.end_pos,
                                      cplan.union_types)
        for event in events:
            scanned += 1
            # 1. member-private continuations (forked in earlier events)
            if privates:
                alive: list[_MemberRun] = []
                for run in privates:
                    detector = run.detector
                    feedback = detector.process(event)
                    run.member.result.events_fed += 1
                    if not feedback.is_empty:
                        if feedback.created:
                            run.member.result.groups_created += \
                                len(feedback.created)
                        for completion in feedback.completed:
                            run.member._emit(run.wid,
                                             completion.constituents)
                    if detector.done:
                        run.state = _DONE
                    else:
                        alive.append(run)
                privates = alive
            # 2. the shared prefix trajectory.  ``events_fed`` is
            # attributed in bulk when a run leaves the tracking set (and
            # at window end for runs that never leave) — per-event
            # attribution would reintroduce the O(members) loop this
            # whole cluster walk exists to avoid.
            if tracking:
                if shared is not None and shared.violates_guard(event):
                    shared = None  # same-event re-creation happens below
                if shared is not None:
                    pos = shared.pos
                    if pos >= p:
                        satisfied, static = True, True
                    elif last_kleene and pos == p - 1 and \
                            shared._satisfied(pos):
                        satisfied, static = True, False
                    else:
                        satisfied = static = False
                    if satisfied:
                        changed = False
                        bindings = shared.bindings
                        for run in tracking:
                            element = run.belem
                            if element is None:
                                continue  # completed at the transition
                            if static and run.bguards:
                                killed = False
                                for guard in run.bguards:
                                    if self._kernel_true(guard, event,
                                                         bindings):
                                        killed = True
                                        break
                                if killed:
                                    # alone run: guard abandons the match,
                                    # then this same event may create anew
                                    run.member.result.events_fed += scanned
                                    detector = _fresh_detector(run.member)
                                    feedback = detector.process(event)
                                    if feedback.created:
                                        run.member.result.groups_created \
                                            += len(feedback.created)
                                    for completion in feedback.completed:
                                        run.member._emit(
                                            run.wid,
                                            completion.constituents)
                                    if detector.done:
                                        run.state = _DONE
                                    else:
                                        run.detector = detector
                                        run.state = _PRIVATE
                                    changed = True
                                    continue
                            if self._element_accepts(element, event,
                                                     bindings):
                                fork = _fork_match(shared, run.member)
                                if not fork.step(event):
                                    continue  # defensive; cannot happen
                                run.member.result.events_fed += scanned
                                if fork.is_complete:
                                    run.member._emit(
                                        run.wid,
                                        tuple(e for _n, e
                                              in fork.bound_order))
                                    run.state = _DONE
                                else:
                                    run.detector = _continuation_detector(
                                        run.member, fork)
                                    run.state = _PRIVATE
                                changed = True
                        live = sum(1 for run in tracking
                                   if run.state == _TRACKING)
                        if not static and live:
                            shared.step(event)  # Kleene keeps absorbing
                        if live:
                            self.prefix_events_saved += live - 1
                        if changed:
                            tracking = [run for run in tracking
                                        if run.state == _TRACKING]
                            privates.extend(run for run in runs
                                            if run.state == _PRIVATE
                                            and run not in privates)
                    else:
                        shared.step(event)
                        self.prefix_events_saved += len(tracking) - 1
                        if shared.pos >= p or (
                                last_kleene and shared.pos == p - 1
                                and shared._satisfied(shared.pos)):
                            if self._complete_prefix_members(
                                    shared, tracking, scanned):
                                tracking = [run for run in tracking
                                            if run.state == _TRACKING]
                if shared is None and tracking:
                    if prefix_plan.first_accepts(event):
                        shared = NFAPartialMatch(0, prefix_plan,
                                                 _NONE_POLICY)
                        absorbed = shared.step(event)
                        assert absorbed, "first_accepts implies a binding"
                        for run in tracking:
                            run.member.result.groups_created += 1
                        if shared.pos >= p or (
                                last_kleene and shared.pos == p - 1
                                and shared._satisfied(shared.pos)):
                            if self._complete_prefix_members(
                                    shared, tracking, scanned):
                                tracking = [run for run in tracking
                                            if run.state == _TRACKING]
            if not tracking and not privates:
                break
        for run in tracking:
            run.member.result.events_fed += scanned
        for run in privates:
            run.detector.close()
        if cplan.union_types is not None:
            span = window.end_pos - window.start_pos
            for member in cluster:
                member.result.events_prefiltered += max(0, span - scanned)


# ---------------------------------------------------------------------------
# the shared member's Session facade
# ---------------------------------------------------------------------------


class MemberSession(Session):
    """A :class:`~repro.streaming.session.Session` facade over a
    :class:`GroupMember` so the hub's :class:`~repro.hub.core.Attachment`
    machinery (sinks, queues, flush/detach lifecycle, stats) works
    unchanged for shared attachments.

    Events are *not* pushed through this session — the group ingests
    them once for everyone; the hub calls :meth:`deliver` with the
    member's matches after every group ingest.  ``flush``/``close``
    delegate end-of-stream to the group (truncated trailing windows run
    privately, exactly like a standalone flush).  Match delivery (user
    middleware, then sink dispatch with isolation) runs through the
    same ``on_match``/``on_error`` chains as
    :class:`~repro.streaming.builder.PipelineSession` — only ingestion
    hooks are absent, because shared attachments never see per-session
    ingestion (ingestion-hooking middleware disqualifies an attachment
    from sharing; the hub enforces that at attach time)."""

    def __init__(self, member: GroupMember, sinks: tuple,
                 middleware: tuple = ()) -> None:
        stack = list(middleware)
        if sinks:
            stack.append(SinkDispatchMiddleware(sinks))
        super().__init__(eager=True, gc=False, middleware=stack)
        self.member = member
        self.sinks = sinks
        self._staged: list[ComplexEvent] = []

    # events flow through the group, never through this session
    def _ingest(self, event: Event) -> None:
        raise AssertionError(
            "shared attachments are fed by their SharedGroup")

    def _finish(self) -> None:
        self._staged.extend(self.member.group.finish_member(self.member))

    def _drain(self) -> list[ComplexEvent]:
        matches, self._staged = self._staged, []
        return matches

    def deliver(self, matches: list[ComplexEvent]) -> list[ComplexEvent]:
        """Hub-internal: deliver freshly validated matches (sinks and
        any on_match/on_error middleware)."""
        self._staged.extend(matches)
        out = self._drain()
        if self._chain_match is not None:
            out = self._deliver_matches(out)
        self.matches_emitted += len(out)
        return out

    def result(self) -> SequentialResult:
        return self.member.result

    def consumed_seqs(self) -> frozenset[int]:
        return frozenset()  # sharing requires a consumption-free policy

    def _release(self) -> None:
        self.member.group.remove(self.member)

    @property
    def watermark(self) -> float:
        return self.member.watermark_value(self._last_ts)
