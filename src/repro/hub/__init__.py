"""Multi-query serving layer: one ingestion path, many attachments.

* :class:`~repro.hub.core.StreamHub` — shared decode → reorder →
  fan-out serving any number of concurrently attached queries, with
  dynamic attach/detach at watermark-consistent admission points,
  per-attachment isolation (ledger, stats, sinks) and bounded queues;
* :class:`~repro.hub.aio.AsyncStreamHub` — the asyncio facade
  (``await hub.push(event)``, async sinks, ``async for match in
  attachment``) layered over the sync core;
* ``python -m repro serve`` — the CLI face: many ``--query`` files over
  one stdin/CSV-tail source, matches tagged by query name.
"""

from repro.hub.aio import AsyncAttachment, AsyncStreamHub
from repro.hub.core import (
    Attachment,
    AttachmentStats,
    BackpressureError,
    HubClosedError,
    HubStats,
    StreamHub,
)
from repro.hub.optimizer import (
    RoutingIndex,
    SharedGroup,
    SharingStats,
    member_signature,
    routed_types_for,
    share_enabled,
)

__all__ = [
    "Attachment",
    "AttachmentStats",
    "AsyncAttachment",
    "AsyncStreamHub",
    "BackpressureError",
    "HubClosedError",
    "HubStats",
    "RoutingIndex",
    "SharedGroup",
    "SharingStats",
    "StreamHub",
    "member_signature",
    "routed_types_for",
    "share_enabled",
]
