"""The multi-query StreamHub: one ingestion path, many queries.

After the session redesign every :class:`~repro.streaming.session.Session`
still binds exactly one query to one stream pass — N continuous queries
over the same feed means N redundant decode → reorder → split passes.
Real CEP deployments multiplex *many* queries over one shared event
feed, and adaptive-middleware work (Dearle et al.) argues the serving
surface must support runtime reconfiguration rather than
restart-to-change.  The hub is that layer:

.. code-block:: python

    hub = StreamHub(slack=10.0)
    spikes = hub.attach(spike_query, engine="threaded", k=4,
                        sink=alert)
    bands = hub.attach(BAND_TEXT, engine="spectre",
                       params={"lowerLimit": 40, "upperLimit": 60})
    for event in source:
        hub.push(event)              # ONE reorder pass, N engines
    bands.detach()                   # mid-stream reconfiguration
    audits = hub.attach(audit_query) # joins at the current watermark
    ...
    hub.close()

One :class:`~repro.events.ooo.SlackSorter` repairs out-of-order arrival
for every attachment; each attachment keeps its own engine session —
isolated consumption ledger, isolated ``RunStats`` — built through the
same :func:`~repro.streaming.builder.build_engine` registry the fluent
pipeline and the CLI use.

**Watermark-consistent admission.**  An attachment added mid-stream
must not see half a stream's worth of a window: it goes *pending* until
the hub reaches a point where the attachment's window decomposition
re-synchronises with a standalone run — the next released event for
predicate-opened windows (window starts are data-driven), the next
slide-aligned stream position for ``FROM every s events`` windows.
From that point the attachment emits exactly the suffix of its alone
run: the complex events of windows opening at or after its
``admission_watermark``.  (When a *consumption policy* couples windows
across the admission point — overlapping windows with consumption —
the suffix is still well-formed but an alone run may differ in the
first overlapping windows; tumbling windows and consumption-free
queries are exact.)

**Backpressure.**  Sink-less attachments buffer matches in a bounded
queue for pull-style consumption (``drain()``/iteration).  When a queue
overruns its bound the hub signals the producer: ``overflow="raise"``
(default) raises :class:`BackpressureError` *after* the fan-out
completed — no match is lost, the queue is transiently over its bound,
and every further push keeps raising until the consumer drains;
``overflow="drop_oldest"`` enforces a hard bound instead, dropping and
counting the oldest matches.  The asyncio facade
(:class:`~repro.hub.aio.AsyncStreamHub`) turns this into real
backpressure: ``await hub.push(event)`` suspends until consumers catch
up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.events.ooo import SlackSorter
from repro.middleware.base import (
    MiddlewareContext,
    MiddlewareStack,
    _implements,
    restrict,
)
from repro.middleware.sinks import SinkError
from repro.hub.optimizer import (
    GroupMember,
    MemberSession,
    RoutingIndex,
    SharedGroup,
    SharingStats,
    member_signature,
    routed_types_for,
    share_enabled,
)
from repro.patterns.parser import parse_query
from repro.patterns.query import Query
from repro.streaming.builder import PipelineSession, build_engine
from repro.utils.validation import require
from repro.windows.specs import EverySlide

_NO_EVENTS: list[Event] = []


def _json_safe(value):
    """Clamp a numeric leaf to something ``json.dumps`` round-trips
    under strict parsers: non-finite floats become ``None``."""
    if isinstance(value, float) and \
            (value != value or value in (float("inf"), float("-inf"))):
        return None
    return value


class HubClosedError(RuntimeError):
    """An operation was issued against a closed StreamHub."""


class BackpressureError(RuntimeError):
    """One or more attachment queues overran their bound.

    Raised after the fan-out completed — no match was lost; drain the
    named attachments and keep pushing.
    """

    def __init__(self, attachments: list["Attachment"]) -> None:
        self.attachments = list(attachments)
        depths = ", ".join(f"{a.name}={len(a._queue)}/{a.queue_size}"
                           for a in self.attachments)
        super().__init__(
            f"attachment queue(s) over bound ({depths}); drain them "
            f"(Attachment.drain()) or attach a sink")


@dataclass(frozen=True)
class AttachmentStats:
    """Per-attachment snapshot inside :meth:`StreamHub.stats`."""

    name: str
    engine: str
    state: str
    events_delivered: int
    matches_emitted: int
    matches_dropped: int
    queue_depth: int
    sink_errors: int
    admission_position: Optional[int]
    admission_watermark: Optional[float]
    run_stats: Any = None
    # multi-query optimizer observability: events that reached this
    # attachment's matching path vs. events the hub's type index proved
    # irrelevant and never delivered; ``shared`` marks attachments served
    # by a SharedGroup instead of a private engine session.
    events_offered: int = 0
    events_skipped_by_index: int = 0
    shared: bool = False

    def to_dict(self) -> dict:
        """Nested, JSON-safe snapshot (``run_stats`` recurses through
        its own ``to_dict`` when the engine provides one)."""
        run_stats = self.run_stats
        if run_stats is not None:
            to_dict = getattr(run_stats, "to_dict", None)
            run_stats = to_dict() if callable(to_dict) else repr(run_stats)
        return {
            "name": self.name,
            "engine": self.engine,
            "state": self.state,
            "events_delivered": self.events_delivered,
            "matches_emitted": self.matches_emitted,
            "matches_dropped": self.matches_dropped,
            "queue_depth": self.queue_depth,
            "sink_errors": self.sink_errors,
            "admission_position": self.admission_position,
            "admission_watermark": _json_safe(self.admission_watermark),
            "events_offered": self.events_offered,
            "events_skipped_by_index": self.events_skipped_by_index,
            "shared": self.shared,
            "run_stats": run_stats,
        }


@dataclass(frozen=True)
class HubStats:
    """Aggregate snapshot of one hub: ingestion counters plus one
    :class:`AttachmentStats` row per (current or detached) attachment."""

    events_pushed: int
    events_released: int
    late_events: int
    pending_reorder: int
    watermark: float
    attachments: tuple[AttachmentStats, ...]
    sharing: Optional[SharingStats] = None
    durability: Optional[dict] = None  # WAL/checkpoint block (if durable)

    @property
    def matches_total(self) -> int:
        return sum(a.matches_emitted for a in self.attachments)

    @property
    def attachments_live(self) -> int:
        return sum(a.state in ("live", "pending") for a in self.attachments)

    def to_dict(self) -> dict:
        """Nested, JSON-safe snapshot of the whole hub — the shape
        ``python -m repro serve --stats-json`` writes."""
        return {
            "events_pushed": self.events_pushed,
            "events_released": self.events_released,
            "late_events": self.late_events,
            "pending_reorder": self.pending_reorder,
            "watermark": _json_safe(self.watermark),
            "matches_total": self.matches_total,
            "attachments_live": self.attachments_live,
            "attachments": [a.to_dict() for a in self.attachments],
            "sharing": None if self.sharing is None
            else self.sharing.to_dict(),
            "durability": self.durability,
        }


class Attachment:
    """One continuous query served by a hub.

    Created by :meth:`StreamHub.attach`; holds the query's own
    :class:`~repro.streaming.builder.PipelineSession` (isolated ledger,
    isolated stats).  Matches flow to the attachment's sinks if any
    were registered, else into the bounded queue consumed by
    :meth:`drain` / iteration.
    """

    PENDING = "pending"
    LIVE = "live"
    FLUSHED = "flushed"
    DETACHED = "detached"

    def __init__(self, hub: "StreamHub", name: str, query: Query,
                 engine: str, session: PipelineSession | MemberSession,
                 queue_size: int, overflow: str,
                 member: Optional[GroupMember] = None,
                 routed_types: Optional[frozenset] = None) -> None:
        self.hub = hub
        self.name = name
        self.query = query
        self.engine = engine
        self.session = session
        self.queue_size = queue_size
        self.overflow = overflow
        self.state = Attachment.PENDING
        self.admission_position: Optional[int] = None
        self.admission_watermark: Optional[float] = None
        self.events_delivered = 0
        self.matches_dropped = 0
        self.sink_errors_total = 0
        self._queue: deque[ComplexEvent] = deque()
        self._over_bound = False
        # multi-query optimizer state: ``_live`` is the admission fast
        # path (one bool per event instead of a state-string compare plus
        # a position-modulo check forever); ``_member`` marks shared
        # attachments (fed by their SharedGroup, not by push); routed
        # attachments receive only events of ``_routed_types``.
        self._live = False
        self._member = member
        self._routed_types = routed_types
        self.events_offered = 0
        self.events_skipped_by_index = 0
        # durability/recovery state: ``_admit_floor`` keeps a restored
        # or replayed attachment pending until the stream position it
        # originally joined at (suffix replay must not open windows the
        # original run never saw); ``_replay_skip`` filters events a
        # pre-crash consumption ledger already claimed; ``engine_options``
        # records the attach-time engine kwargs for durable re-attachment.
        self._admit_floor: Optional[int] = None
        self._replay_skip: Optional[frozenset] = None
        self.engine_options: dict = {}

    # -- delivery (hub-internal) ------------------------------------------

    def _admits(self, position: int) -> bool:
        """Would a standalone run open windows in sync from here on?"""
        start = self.query.window.start
        if isinstance(start, EverySlide):
            return position % start.slide == 0
        return True  # predicate starts are data-driven: any point works

    def _begin_admission(self, event: Event, position: int) -> bool:
        """Try to admit a pending attachment at ``position``."""
        if self.state != Attachment.PENDING or not self._admits(position):
            return False
        if self._admit_floor is not None and position < self._admit_floor:
            return False
        self.state = Attachment.LIVE
        self._live = True
        self.admission_position = position
        self.admission_watermark = event.timestamp
        if self._member is not None:
            self._member.group.admit(self._member, position)
        return True

    def _offer(self, event: Event, position: int) -> int:
        if not self._live:
            if not self._begin_admission(event, position):
                return 0
        if self._replay_skip is not None and \
                event.seq in self._replay_skip:
            return 0  # consumed pre-crash; the ledger already spent it
        if self._member is not None:
            # the SharedGroup ingests this event once for every member
            self.events_delivered += 1
            self.events_offered += 1
            return 0
        types = self._routed_types
        if types is not None and event.etype not in types:
            self.events_skipped_by_index += 1
            return 0
        self.events_delivered += 1
        self.events_offered += 1
        matches = self.session.push(event)
        self._enqueue(matches)
        return len(matches)

    def _offer_many(self, events: list[Event], first_position: int) -> int:
        """Batch fan-out: admit (if pending) and deliver a whole released
        chunk through the session's ``push_many``."""
        if not self._live:
            for index, event in enumerate(events):
                if self._begin_admission(event, first_position + index):
                    if index:
                        events = events[index:]
                    break
            else:
                return 0
        count = len(events)
        self.events_delivered += count
        self.events_offered += count
        if self._member is not None:
            return 0  # the SharedGroup ingests the chunk once for everyone
        matches = self.session.push_many(events)
        self._enqueue(matches)
        return len(matches)

    def _offer_routed(self, events: list[Event], total: int) -> int:
        """Fan-out for a live routed attachment: the hub's type index
        already classified the chunk; ``events`` is the interested
        subset, ``total`` the full released-chunk size."""
        self.events_skipped_by_index += total - len(events)
        if not events:
            return 0
        self.events_delivered += len(events)
        self.events_offered += len(events)
        matches = self.session.push_many(events)
        self._enqueue(matches)
        return len(matches)

    def _deliver_shared(self, matches: list[ComplexEvent]) -> int:
        """Deliver matches the SharedGroup produced for this member."""
        out = self.session.deliver(matches)
        self._enqueue(out)
        return len(out)

    def _enqueue(self, matches: list[ComplexEvent]) -> None:
        if self.session.sinks:
            return  # sinks consumed them (isolated inside the session)
        self._queue.extend(matches)
        if self.overflow == "drop_oldest":
            while len(self._queue) > self.queue_size:
                self._queue.popleft()
                self.matches_dropped += 1
        elif len(self._queue) > self.queue_size:
            self._over_bound = True

    def _finish(self, errors: list) -> int:
        """Hub flush: end this attachment's stream (keep it readable)."""
        if self.state not in (Attachment.PENDING, Attachment.LIVE):
            return 0
        try:
            matches = self.session.flush()
        except SinkError as error:
            self.sink_errors_total += len(error.errors)
            errors.extend(error.errors)
            matches = error.matches
        self.state = Attachment.FLUSHED
        self._live = False
        self._enqueue(matches)
        return len(matches)

    def _release(self) -> None:
        if self.session.is_flushed:
            try:
                self.session.close()
            except SinkError as error:  # already surfaced at flush time
                self.sink_errors_total += len(error.errors)
        else:
            self.session.abort()

    # -- consumer surface --------------------------------------------------

    @property
    def watermark(self) -> float:
        """No future match of this attachment anchors below this."""
        return self.session.watermark

    @property
    def matches_emitted(self) -> int:
        return self.session.matches_emitted

    def drain(self) -> list[ComplexEvent]:
        """Take every queued match (resets the backpressure signal)."""
        matches = list(self._queue)
        self._queue.clear()
        self._over_bound = False
        return matches

    def __iter__(self) -> Iterator[ComplexEvent]:
        """Consume queued matches one at a time (stops when empty)."""
        while self._queue:
            yield self._queue.popleft()
        self._over_bound = False

    def detach(self, drain: bool = True) -> list[ComplexEvent]:
        """Leave the hub mid-stream.

        With ``drain=True`` (default) the attachment's stream ends
        *cleanly*: trailing windows are flushed exactly as a mid-stream
        ``Session.flush`` would — the attachment's total output equals
        its query run alone over the delivered prefix — and the flush
        matches are returned (sinks fire, sink-less attachments also
        keep them queued).  With ``drain=False`` the session is aborted
        and trailing windows are discarded.  Idempotent.  Raises
        :class:`~repro.streaming.builder.SinkError` after detaching if
        sinks failed during the final delivery.
        """
        if self.state == Attachment.DETACHED:
            return []  # idempotent: even the on_detach chain runs once
        chain = self.hub._middleware.chain(
            "on_detach", lambda ctx: self._detach_raw(drain))
        if chain is None:
            return self._detach_raw(drain)
        ctx = MiddlewareContext("on_detach", hub=self.hub, attachment=self,
                                drain=drain)
        result = chain(ctx)
        return [] if result is None else result

    def _detach_raw(self, drain: bool) -> list[ComplexEvent]:
        self.hub._forget(self)
        was_live = self.state in (Attachment.PENDING, Attachment.LIVE)
        self.state = Attachment.DETACHED
        self._live = False
        if not (drain and was_live):
            self._release()
            return []
        try:
            matches = self.session.flush()
        except SinkError as error:
            self.sink_errors_total += len(error.errors)
            self._enqueue(error.matches)
            self._release()
            raise
        self._enqueue(matches)
        self._release()
        return matches

    def stats(self) -> AttachmentStats:
        result = self.session.result()
        return AttachmentStats(
            name=self.name,
            engine=self.engine,
            state=self.state,
            events_delivered=self.events_delivered,
            matches_emitted=self.matches_emitted,
            matches_dropped=self.matches_dropped,
            queue_depth=len(self._queue),
            sink_errors=self.sink_errors_total
            + len(self.session.sink_errors),
            admission_position=self.admission_position,
            admission_watermark=self.admission_watermark,
            run_stats=getattr(result, "stats", None),
            events_offered=self.events_offered,
            events_skipped_by_index=self.events_skipped_by_index,
            shared=self._member is not None,
        )

    def __repr__(self) -> str:
        return (f"Attachment({self.name!r}, engine={self.engine!r}, "
                f"state={self.state}, matches={self.matches_emitted})")


class StreamHub:
    """One shared ingestion path serving any number of attachments.

    Parameters
    ----------
    slack, late_policy:
        The shared reordering stage (``slack=0.0`` still enforces the
        global order and handles exact-duplicate/late arrivals per
        ``late_policy``).
    queue_size, overflow:
        Defaults for sink-less attachments' match queues; see the
        module docstring for the backpressure contract.

    Not thread-safe: drive a hub from one thread (or wrap it in
    :class:`~repro.hub.aio.AsyncStreamHub` and one event loop).
    """

    def __init__(self, *, slack: float = 0.0, late_policy: str = "drop",
                 queue_size: int = 1024, overflow: str = "raise",
                 share: Optional[bool] = None,
                 middleware: Optional[Iterable] = None) -> None:
        require(queue_size >= 1, "queue_size must be >= 1")
        require(overflow in ("raise", "drop_oldest"),
                "overflow must be 'raise' or 'drop_oldest'")
        self._sorter = SlackSorter(slack, late_policy)
        # hub-level interception: ingestion/lifecycle hooks run at hub
        # scope (before the shared reorder stage); the middlewares'
        # match/error hooks are replayed inside every attachment's
        # session chain via restrict() so delivery is intercepted too,
        # without double-running the ingestion hooks.
        self._middleware = MiddlewareStack(middleware or ())
        self._session_middleware = tuple(
            restrict(mw, ("on_match", "on_error"))
            for mw in self._middleware.middlewares
            if _implements(mw, "on_match") or _implements(mw, "on_error"))
        self._chain_push = self._middleware.chain(
            "on_push", lambda ctx: self._push_raw(ctx.event))
        self._chain_push_many = self._middleware.chain(
            "on_push_many", lambda ctx: self._push_many_raw(ctx.events))
        self._chain_flush = self._middleware.chain(
            "on_flush", lambda ctx: self._flush_raw())
        self._mw_ctx = MiddlewareContext(hub=self) \
            if self._middleware else None
        self.queue_size = queue_size
        self.overflow = overflow
        self.events_pushed = 0
        self._position = 0  # released events fanned out so far
        self._attachments: list[Attachment] = []
        self._detached: list[Attachment] = []
        self._names: set[str] = set()
        self._flushed = False
        self._closed = False
        # cross-query optimizer: ``share=None`` reads REPRO_SHARE
        # (default on); ``share=False`` is the differential-testing
        # escape hatch disabling routing, memoization and prefix sharing.
        self._share = share_enabled(share)
        self._routing = RoutingIndex()
        self._groups: dict[tuple, SharedGroup] = {}
        self._all_groups: list[SharedGroup] = []  # incl. emptied (stats)
        # durability: when retention is enabled the hub keeps the
        # released-event suffix (position, event) that a checkpoint
        # needs to make open windows replayable; the manager trims it
        # at every checkpoint cut.  ``durability`` is stamped by a
        # DurabilityManager so stats()/to_dict() can include its block.
        self._retained: Optional[list[tuple[int, Event]]] = None
        self.durability: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------

    def _require_open(self, operation: str) -> None:
        if self._closed:
            raise HubClosedError(f"cannot {operation}: hub is closed")
        if self._flushed:
            raise HubClosedError(
                f"cannot {operation}: hub already flushed (end-of-stream)")

    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def watermark(self) -> float:
        """Ingestion watermark: everything at or below this timestamp
        has been released to the attachments and is final."""
        return self._sorter.watermark

    @property
    def attachments(self) -> tuple[Attachment, ...]:
        """The currently attached (non-detached) attachments."""
        return tuple(self._attachments)

    @property
    def late_events(self) -> int:
        return self._sorter.late_events

    # -- attach / detach ---------------------------------------------------

    def attach(self, query: Query | str, *, engine: str = "spectre",
               name: Optional[str] = None,
               params: Optional[Mapping[str, Any]] = None,
               sink: Callable[[ComplexEvent], None]
               | Iterable[Callable[[ComplexEvent], None]] | None = None,
               queue_size: Optional[int] = None,
               overflow: Optional[str] = None,
               middleware: Optional[Iterable] = None,
               **engine_options) -> Attachment:
        """Subscribe one query; works before the first push or mid-stream.

        ``query`` is a :class:`~repro.patterns.query.Query` or
        MATCH-RECOGNIZE text (parsed via
        :func:`~repro.patterns.parser.parse_query` with ``params``).
        ``engine`` plus ``engine_options`` go through
        :func:`~repro.streaming.builder.build_engine` — any registered
        engine (``sequential``, ``spectre``, ``threaded``, ``elastic``,
        ``approximate``, ``sharded``, ``trex``) with its usual options
        (``k=``, ``scheduler=``, ``workers=``, ``config=``, ...).
        ``sink`` is one callback or an iterable of callbacks invoked
        per validated match (isolated: a raising sink never starves the
        others); without sinks, matches buffer in the bounded queue.
        ``middleware`` installs per-attachment interception around this
        attachment's session (see :mod:`repro.middleware.base`); a
        middleware hooking ``on_push``/``on_push_many`` gives the
        attachment a private engine session — per-member ingestion
        rewrites are unsound inside a shared group, which ingests each
        event exactly once for all members.
        """
        if self._closed or self._flushed:
            raise HubClosedError("cannot attach: hub is "
                                 + ("closed" if self._closed else "flushed"))
        if isinstance(query, str):
            query = parse_query(query, name=name or "query",
                                params=params)
        elif params is not None:
            raise ValueError("params= only applies to query text")
        name = name or query.name
        user_middleware = tuple(middleware or ())
        chain = self._middleware.chain(
            "on_attach",
            lambda ctx: self._attach_raw(
                ctx.query, engine=ctx.engine, name=ctx.name, sinks=sink,
                queue_size=queue_size, overflow=overflow,
                middleware=user_middleware, engine_options=engine_options))
        if chain is None:
            return self._attach_raw(
                query, engine=engine, name=name, sinks=sink,
                queue_size=queue_size, overflow=overflow,
                middleware=user_middleware, engine_options=engine_options)
        ctx = MiddlewareContext("on_attach", hub=self, query=query,
                                name=name, engine=engine)
        return chain(ctx)

    def _attach_raw(self, query: Query, *, engine: str, name: str,
                    sinks, queue_size: Optional[int],
                    overflow: Optional[str], middleware: tuple,
                    engine_options: dict) -> Attachment:
        if name in self._names:
            raise ValueError(f"attachment name {name!r} already in use")
        if sinks is None:
            sinks = ()
        elif callable(sinks):
            sinks = (sinks,)
        else:
            sinks = tuple(sinks)
        session_middleware = self._session_middleware + middleware
        ingest_hooked = any(
            _implements(mw, "on_push") or _implements(mw, "on_push_many")
            for mw in middleware)
        member = routed_types = None
        if self._share and not engine_options and not ingest_hooked:
            signature = member_signature(query, engine)
            if signature is not None:
                member = self._group_for(query).add_member(
                    name, query, signature)
        if member is not None:
            session: PipelineSession | MemberSession = \
                MemberSession(member, sinks,
                              middleware=session_middleware)
        else:
            if self._share:
                routed_types = routed_types_for(query)
            inner = build_engine(query, engine, **engine_options).open()
            session = PipelineSession(inner, None, sinks,
                                      middleware=session_middleware)
        attachment = Attachment(
            self, name, query, engine, session,
            queue_size=self.queue_size if queue_size is None else queue_size,
            overflow=self.overflow if overflow is None else overflow,
            member=member, routed_types=routed_types)
        if member is not None:
            member.attachment = attachment
        attachment.engine_options = dict(engine_options)
        session.bind_attachment(attachment)
        self._routing.add(name, routed_types)
        self._names.add(name)
        self._attachments.append(attachment)
        return attachment

    def _group_for(self, query: Query) -> SharedGroup:
        """The live shared group for this window spec (one splitter and
        one prefix stepper per ``(slide, size)`` equivalence class)."""
        key = (query.window.start.slide, query.window.scope.size)
        group = self._groups.get(key)
        if group is None or not group.members:
            group = SharedGroup(query.window)
            self._groups[key] = group
            self._all_groups.append(group)
        return group

    def _forget(self, attachment: Attachment) -> None:
        if attachment in self._attachments:
            self._attachments.remove(attachment)
            self._detached.append(attachment)
            self._names.discard(attachment.name)
            self._routing.remove(attachment.name)

    # -- ingestion ---------------------------------------------------------

    def push(self, event: Event) -> int:
        """Offer one event to every attachment; return the number of
        matches it validated across all of them.

        The shared sorter may hold the event back (slack) or release
        several buffered ones; each released event is fanned out to
        every live attachment in attach order, and pending attachments
        are admitted the moment their alignment point passes.
        """
        self._require_open("push")
        if self._chain_push is None:
            return self._push_raw(event)
        ctx = self._mw_ctx
        ctx.hook = "on_push"
        ctx.event = event
        ctx.events = None
        result = self._chain_push(ctx)
        return 0 if result is None else result

    def _push_raw(self, event: Event) -> int:
        released = self._sorter.push(event)
        self.events_pushed += 1
        return self._fan_out(released)

    def push_many(self, events: Iterable[Event]) -> int:
        """Offer a batch of events; return the total matches validated.

        Amortizes the ingestion path over the batch: one sorter pass,
        then one ``push_many`` per attachment over the whole released
        chunk (instead of a per-event fan-out loop), and a single
        backpressure check at the end — matches per attachment are
        identical to per-event ``push``, only intra-batch sink
        interleaving across attachments differs.
        """
        self._require_open("push_many")
        if self._chain_push_many is None:
            return self._push_many_raw(events)
        ctx = self._mw_ctx
        ctx.hook = "on_push_many"
        ctx.event = None
        ctx.events = events if isinstance(events, list) else list(events)
        result = self._chain_push_many(ctx)
        return 0 if result is None else result

    def _push_many_raw(self, events: Iterable[Event]) -> int:
        released: list[Event] = []
        count = 0
        for event in events:
            released.extend(self._sorter.push(event))
            count += 1
        self.events_pushed += count
        delivered = 0
        if released:
            first_position = self._position
            self._position += len(released)
            if self._retained is not None:
                self._retained.extend(
                    (first_position + index, event)
                    for index, event in enumerate(released))
            # classify the chunk once against the routing index; each
            # live routed attachment receives only its interested subset
            buckets = self._routing.buckets(released) \
                if self._routing.has_routed else None
            for attachment in list(self._attachments):
                if buckets is not None and attachment._live and \
                        attachment._routed_types is not None:
                    delivered += attachment._offer_routed(
                        buckets.get(attachment.name, _NO_EVENTS),
                        len(released))
                else:
                    delivered += attachment._offer_many(released,
                                                        first_position)
            if self._groups:
                delivered += self._ingest_groups(released, first_position)
        # like push(): keep raising while any queue is over bound, even
        # on calls the sorter fully buffered — the producer must drain
        over = [a for a in self._attachments if a._over_bound]
        if over:
            raise BackpressureError(over)
        return delivered

    def _fan_out(self, released: list[Event], *,
                 raise_backpressure: bool = True) -> int:
        delivered = 0
        for event in released:
            position = self._position
            self._position += 1
            if self._retained is not None:
                self._retained.append((position, event))
            for attachment in list(self._attachments):
                delivered += attachment._offer(event, position)
            if self._groups:
                delivered += self._ingest_groups([event], position)
        if raise_backpressure:
            over = [a for a in self._attachments if a._over_bound]
            if over:
                raise BackpressureError(over)
        return delivered

    def _ingest_groups(self, released: list[Event],
                       first_position: int) -> int:
        """Feed the released chunk to every shared group (each ingests
        it exactly once for all its members) and deliver the matches to
        the member attachments."""
        delivered = 0
        for key, group in list(self._groups.items()):
            if not group.members:
                del self._groups[key]  # all members detached
                continue
            group.ingest(released, first_position)
            for member in list(group.members):
                if member._pending:
                    delivered += member.attachment._deliver_shared(
                        member.drain_pending())
        return delivered

    def flush(self) -> int:
        """End-of-stream: release the sorter's buffer, flush every
        attachment (trailing windows), return the matches that
        surfaced.  Never raises :class:`BackpressureError` — there is
        no more producing to push back on, and the overrun queues hold
        every match losslessly for ``drain()``.  Raises one aggregated
        :class:`~repro.streaming.builder.SinkError` afterwards if any
        attachment's sinks failed."""
        self._require_open("flush")
        if self._chain_flush is None:
            return self._flush_raw()
        ctx = self._mw_ctx
        ctx.hook = "on_flush"
        ctx.event = None
        ctx.events = None
        result = self._chain_flush(ctx)
        return 0 if result is None else result

    def _flush_raw(self) -> int:
        delivered = self._fan_out(self._sorter.flush(),
                                  raise_backpressure=False)
        errors: list = []
        for attachment in list(self._attachments):
            delivered += attachment._finish(errors)
        self._flushed = True
        if errors:
            raise SinkError(errors)
        return delivered

    def close(self) -> int:
        """Flush (if the caller did not) and release every attachment's
        engine resources.  Idempotent."""
        if self._closed:
            return 0
        try:
            delivered = 0 if self._flushed else self.flush()
        finally:
            self._closed = True
            for attachment in self._attachments:
                attachment._release()
        return delivered

    def abort(self) -> None:
        """Release resources without the implicit flush (error path)."""
        if self._closed:
            return
        self._closed = True
        for attachment in self._attachments:
            attachment.session.abort()

    def __enter__(self) -> "StreamHub":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    # -- durability (checkpoint / recovery) --------------------------------

    def retain_released(self) -> None:
        """Keep the released-event suffix for checkpointing.  Enabled
        by the durability manager before the first push; the retained
        list is trimmed to the checkpoint cut at every snapshot.
        Entries hold *contiguous* positions (every released event is
        retained, and trimming only drops a prefix), so suffix and
        trim are index arithmetic, not scans — checkpoint cost must
        not grow with the checkpoint interval."""
        if self._retained is None:
            self._retained = []

    @property
    def retained_floor(self) -> int:
        """Position of the oldest retained released event (equals the
        current position when nothing is retained)."""
        if self._retained:
            return self._retained[0][0]
        return self._position

    def retained_suffix(self, cut: int) -> list[tuple[int, Event]]:
        """The retained ``(position, event)`` entries at/after ``cut``."""
        retained = self._retained
        if not retained:
            return []
        start = cut - retained[0][0]
        if start <= 0:
            return list(retained)
        return retained[start:]

    def trim_retained(self, cut: int) -> None:
        """Drop retained events below ``cut`` (the checkpoint decided
        no open window can need them)."""
        retained = self._retained
        if retained is None or not retained:
            return
        drop = cut - retained[0][0]
        if drop > 0:
            del retained[:len(retained) if drop > len(retained)
                         else drop]

    def restore_ingest_state(self, *, events_pushed: int,
                             pending: list[Event], max_seen: float,
                             released_key: tuple[float, float],
                             late_events: int = 0) -> None:
        """Recovery: restore the ingestion counters and the sorter's
        held-back buffer from a snapshot (called after the released
        suffix has been replayed, so positions line up)."""
        self.events_pushed = events_pushed
        self._sorter.restore(pending, max_seen, released_key,
                             late_events)

    def replay_suffix(self, first_position: int,
                      events: list[Event]) -> int:
        """Recovery: re-fan-out already-released events so open
        windows rebuild their partial matches.  Bypasses the sorter
        (these events were released before the snapshot) and the
        middleware chains; emitted matches are expected to be
        suppressed by the recovery dedup ledger."""
        self._position = first_position
        return self._fan_out(events, raise_backpressure=False)

    def ingest_replay(self, events: Iterable[Event]) -> int:
        """Recovery: re-push WAL-tail events through the shared sorter
        and fan-out, bypassing the middleware chains (their effects —
        shedding, validation rewrites — are baked into the logged
        events) and the backpressure raise (consumers are not running
        during recovery)."""
        released: list[Event] = []
        count = 0
        for event in events:
            released.extend(self._sorter.push(event))
            count += 1
        self.events_pushed += count
        return self._fan_out(released, raise_backpressure=False)

    # -- introspection -----------------------------------------------------

    def stats(self) -> HubStats:
        """Aggregate + per-attachment snapshot (detached ones included,
        so a serving summary never loses history)."""
        everyone = self._attachments + self._detached
        groups = self._all_groups
        return HubStats(
            events_pushed=self.events_pushed,
            events_released=self._position,
            late_events=self._sorter.late_events,
            pending_reorder=self._sorter.pending,
            watermark=self.watermark,
            attachments=tuple(a.stats() for a in everyone),
            durability=None if self.durability is None
            else self.durability.stats_dict(),
            sharing=SharingStats(
                enabled=self._share,
                groups=len(groups),
                shared_attachments=sum(
                    1 for a in everyone if a._member is not None),
                windows_shared=sum(g.windows_shared for g in groups),
                prefix_events_saved=sum(
                    g.prefix_events_saved for g in groups),
                memo_hits=sum(g.memo_hits for g in groups),
                memo_misses=sum(g.memo_misses for g in groups),
            ),
        )
