"""Asyncio facade over the multi-query hub.

The sync :class:`~repro.hub.core.StreamHub` signals backpressure by
raising; under asyncio it can be the real thing — ``await
hub.push(event)`` *suspends* the producer until every consumer's queue
has room:

.. code-block:: python

    async with AsyncStreamHub(slack=5.0) as hub:
        spikes = hub.attach(spike_query, engine="threaded", k=4)

        async def consume():
            async for match in spikes:        # ends on detach/close
                await alert(match)

        task = asyncio.create_task(consume())
        async for event in source:
            await hub.push(event)             # suspends when behind
        await hub.flush()
        await task

Sinks may be plain callables or coroutine functions (``async def``);
they inherit the sync layer's isolation contract — a raising sink never
starves the others, failures aggregate into one
:class:`~repro.streaming.builder.SinkError` at ``flush()``/``close()``.

The facade stays a thin layer: all CEP work happens synchronously in
the wrapped hub (the engines are CPU-bound; an event loop cannot help
them), only match *delivery* — queue puts and sink awaits — is async.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Mapping, Optional

import asyncio

from repro.events.complex_event import ComplexEvent
from repro.events.event import Event
from repro.hub.core import Attachment, HubStats, StreamHub
from repro.middleware.base import (
    MiddlewareContext,
    MiddlewareStack,
    _implements,
    restrict,
)
from repro.middleware.sinks import SinkError
from repro.patterns.query import Query

_DONE = object()  # queue sentinel: this attachment will emit no more


class AsyncAttachment:
    """Async face of one attachment: awaitable iteration + async sinks.

    Without a sink, matches flow through a bounded :class:`asyncio.Queue`
    — ``async for match in attachment`` consumes them and ends when the
    attachment detaches or the hub flushes/closes.
    """

    def __init__(self, hub: "AsyncStreamHub", inner: Attachment,
                 staged: list, sink, queue_size: int,
                 middleware: tuple = ()) -> None:
        self._hub = hub
        self.inner = inner
        self._staged = staged
        self._sink = sink
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._sink_errors: list = []
        self._done_sent = False
        # delivery interception happens here (the inner sync session
        # only stages), so the match/error chains are async — hooks may
        # be ``async def`` and awaits happen per link
        stack = MiddlewareStack(middleware)
        self._achain_match = stack.async_chain(
            "on_match", self._match_terminal)
        self._achain_error = stack.async_chain(
            "on_error", self._error_terminal)

    # -- delegation --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def query(self) -> Query:
        return self.inner.query

    @property
    def state(self) -> str:
        return self.inner.state

    @property
    def watermark(self) -> float:
        return self.inner.watermark

    @property
    def matches_emitted(self) -> int:
        return self.inner.matches_emitted

    @property
    def admission_watermark(self) -> Optional[float]:
        return self.inner.admission_watermark

    def stats(self):
        return self.inner.stats()

    # -- delivery ----------------------------------------------------------

    async def _dispatch(self) -> None:
        """Move staged matches to the sink / the async queue.

        ``queue.put`` is where producer backpressure happens: it
        suspends while the queue is full.
        """
        while self._staged:
            match = self._staged.pop(0)
            if self._achain_match is None:
                await self._deliver(match)
                continue
            ctx = MiddlewareContext("on_match", match=match,
                                    hub=self._hub, attachment=self)
            await self._achain_match(ctx)  # None w/o call_next suppresses

    async def _match_terminal(self, ctx: MiddlewareContext):
        await self._deliver(ctx.match)
        return ctx.match

    async def _deliver(self, match: ComplexEvent) -> None:
        if self._sink is not None:
            try:
                result = self._sink(match)
                if inspect.isawaitable(result):
                    await result
            except Exception as error:  # noqa: BLE001 - sink isolation
                await self._record_error(match, error)
        elif not self._done_sent:
            # after abandon/abort nobody will consume this queue, so a
            # late match is dropped rather than parked (or blocked on)
            await self._queue.put(match)

    async def _record_error(self, match, error) -> None:
        if self._achain_error is None:
            self._sink_errors.append((self._sink, match, error))
            return
        ctx = MiddlewareContext("on_error", match=match, error=error,
                                sink=self._sink, hub=self._hub,
                                attachment=self)
        await self._achain_error(ctx)  # skipping call_next swallows it

    async def _error_terminal(self, ctx: MiddlewareContext) -> None:
        self._sink_errors.append((ctx.sink, ctx.match, ctx.error))

    async def _send_done(self) -> None:
        if not self._done_sent and self._sink is None:
            self._done_sent = True
            await self._queue.put(_DONE)

    def _abort_queue(self) -> None:
        """Error path: end iteration *now* without awaiting.

        Queued matches are discarded (abort semantics, like the sync
        session), which also guarantees room for the sentinel."""
        if self._done_sent or self._sink is not None:
            return
        self._done_sent = True
        while not self._queue.empty():
            self._queue.get_nowait()
        self._queue.put_nowait(_DONE)

    def _take_sink_errors(self) -> list:
        errors, self._sink_errors = self._sink_errors, []
        return errors

    # -- consumer surface --------------------------------------------------

    def __aiter__(self) -> "AsyncAttachment":
        if self._sink is not None:
            raise TypeError(
                f"attachment {self.name!r} delivers to a sink; only "
                f"sink-less attachments are iterable")
        return self

    async def __anext__(self) -> ComplexEvent:
        item = await self._queue.get()
        if item is _DONE:
            raise StopAsyncIteration
        return item

    async def detach(self, drain: bool = True) -> list[ComplexEvent]:
        """Leave the hub; iteration over this attachment ends.

        With ``drain=True`` trailing windows flush first (their matches
        are delivered and returned), mirroring the sync contract.
        """
        if self.inner.state == Attachment.DETACHED:
            return []  # idempotent: the on_detach chain runs once
        chain = self._hub._stack.async_chain(
            "on_detach", lambda ctx: self._detach_raw(drain))
        if chain is None:
            return await self._detach_raw(drain)
        ctx = MiddlewareContext("on_detach", hub=self._hub,
                                attachment=self)
        result = await chain(ctx)
        return [] if result is None else result

    async def _detach_raw(self, drain: bool) -> list[ComplexEvent]:
        matches = self.inner.detach(drain=drain)
        self._hub._forget(self)
        await self._dispatch()
        await self._send_done()
        errors = self._take_sink_errors()
        if errors:
            raise SinkError(errors, matches)
        return matches

    async def abandon(self) -> None:
        """Abrupt-consumer-gone cleanup (e.g. a dropped connection):
        discard staged and queued matches, end iteration immediately,
        and detach *without* flushing trailing windows.

        Unlike :meth:`detach`, this never waits on the vanished
        consumer: a producer suspended on this attachment's full queue
        is *released* — each drain wakes one blocked ``put``, a yield
        lets it complete, and once the attachment is marked done its
        later matches are dropped in :meth:`_deliver` instead of
        parked.  The ``on_detach`` chain still runs exactly once (via
        the idempotent detach).
        """
        self._staged.clear()
        if self._sink is None and not self._done_sent:
            self._done_sent = True  # _deliver drops from here on
            while True:
                while not self._queue.empty():
                    self._queue.get_nowait()
                await asyncio.sleep(0)  # woken producers finish their put
                if self._queue.empty():
                    break
            self._queue.put_nowait(_DONE)
        await self.detach(drain=False)


class AsyncStreamHub:
    """A :class:`~repro.hub.core.StreamHub` driven from an event loop.

    Same attach surface and admission/isolation semantics as the sync
    hub; ``push``/``flush``/``close`` are coroutines that deliver
    matches with real backpressure.  Use ``async with`` for cleanup.
    """

    def __init__(self, *, slack: float = 0.0, late_policy: str = "drop",
                 queue_size: int = 256,
                 share: Optional[bool] = None,
                 middleware: Optional[list] = None,
                 hub: Optional[StreamHub] = None) -> None:
        # sink-less *sync* queues are never used here (every inner
        # attachment gets a staging sink), so the sync bound is moot.
        # The inner hub gets NO middleware: interception happens at
        # this layer, where hooks may be ``async def`` and each chain
        # link awaits — the sync hub would not await them.  A caller
        # may wrap a pre-built (e.g. durability-recovered) sync hub via
        # ``hub=``; its own middleware (synchronous, like the
        # DurabilityMiddleware) keeps running at the sync layer.
        self._hub = hub if hub is not None else StreamHub(
            slack=slack, late_policy=late_policy, share=share)
        self.queue_size = queue_size
        self._attachments: list[AsyncAttachment] = []
        self._stack = MiddlewareStack(middleware or ())
        self._session_middleware = tuple(
            restrict(mw, ("on_match", "on_error"))
            for mw in self._stack.middlewares
            if _implements(mw, "on_match") or _implements(mw, "on_error"))
        self._achain_push = self._stack.async_chain(
            "on_push", self._push_terminal)
        self._achain_push_many = self._stack.async_chain(
            "on_push_many", self._push_many_terminal)
        self._achain_flush = self._stack.async_chain(
            "on_flush", self._flush_terminal)
        self._achain_close = self._stack.async_chain(
            "on_flush", self._close_terminal)

    @property
    def watermark(self) -> float:
        return self._hub.watermark

    @property
    def is_closed(self) -> bool:
        return self._hub.is_closed

    @property
    def late_events(self) -> int:
        return self._hub.late_events

    @property
    def attachments(self) -> tuple[AsyncAttachment, ...]:
        return tuple(a for a in self._attachments
                     if a.state != Attachment.DETACHED)

    def attach(self, query: Query | str, *, engine: str = "spectre",
               name: Optional[str] = None,
               params: Optional[Mapping[str, Any]] = None,
               sink: Optional[Callable[[ComplexEvent], Any]] = None,
               queue_size: Optional[int] = None,
               middleware: Optional[list] = None,
               **engine_options) -> AsyncAttachment:
        """Subscribe one query; ``sink`` may be sync or ``async def``.

        ``middleware`` intercepts this attachment's match delivery and
        sink errors at the async layer (hooks may be ``async def``);
        ``on_attach`` hooks of the hub's middleware run here too, but
        must be synchronous — ``attach()`` is not a coroutine.
        """
        user_middleware = tuple(middleware or ())
        chain = self._stack.chain(
            "on_attach",
            lambda ctx: self._attach_raw(
                ctx.query, engine=ctx.engine, name=ctx.name,
                params=params, sink=sink, queue_size=queue_size,
                middleware=user_middleware,
                engine_options=engine_options))
        if chain is None:
            return self._attach_raw(
                query, engine=engine, name=name, params=params,
                sink=sink, queue_size=queue_size,
                middleware=user_middleware, engine_options=engine_options)
        ctx = MiddlewareContext("on_attach", hub=self, query=query,
                                name=name, engine=engine)
        attachment = chain(ctx)
        if inspect.isawaitable(attachment):
            attachment.close()
            raise TypeError(
                "on_attach hooks must be synchronous under the asyncio "
                "facade (attach() is not a coroutine)")
        return attachment

    def _attach_raw(self, query: Query | str, *, engine: str,
                    name: Optional[str], params, sink,
                    queue_size: Optional[int], middleware: tuple,
                    engine_options: dict) -> AsyncAttachment:
        staged: list = []
        inner = self._hub.attach(query, engine=engine, name=name,
                                 params=params, sink=staged.append,
                                 **engine_options)
        attachment = AsyncAttachment(
            self, inner, staged, sink,
            queue_size=self.queue_size if queue_size is None else queue_size,
            middleware=self._session_middleware + middleware)
        self._attachments.append(attachment)
        return attachment

    def _forget(self, attachment: AsyncAttachment) -> None:
        """Drop a detached attachment from the dispatch loop (the inner
        sync hub keeps its stats history; the async facade must not
        keep iterating dead queues on every push)."""
        try:
            self._attachments.remove(attachment)
        except ValueError:
            pass

    async def _dispatch(self) -> None:
        for attachment in list(self._attachments):
            await attachment._dispatch()

    def _raise_sink_errors(self) -> None:
        errors: list = []
        for attachment in self._attachments:
            errors.extend(attachment._take_sink_errors())
        if errors:
            raise SinkError(errors)

    async def push(self, event: Event) -> int:
        """Offer one event; suspends while any consumer queue is full."""
        if self._achain_push is None:
            return await self._push_terminal(None, event)
        ctx = MiddlewareContext("on_push", hub=self, event=event)
        result = await self._achain_push(ctx)
        return 0 if result is None else result

    async def _push_terminal(self, ctx: Optional[MiddlewareContext],
                             event: Optional[Event] = None) -> int:
        delivered = self._hub.push(ctx.event if ctx is not None else event)
        await self._dispatch()
        return delivered

    async def push_many(self, events: list[Event]) -> int:
        """Offer a batch through one sorter/fan-out pass (mirrors the
        sync hub's ``push_many``); suspends on full consumer queues."""
        if self._achain_push_many is None:
            return await self._push_many_terminal(None, events)
        ctx = MiddlewareContext("on_push_many", hub=self,
                                events=events if isinstance(events, list)
                                else list(events))
        result = await self._achain_push_many(ctx)
        return 0 if result is None else result

    async def _push_many_terminal(self, ctx: Optional[MiddlewareContext],
                                  events: Optional[list] = None) -> int:
        delivered = self._hub.push_many(
            ctx.events if ctx is not None else events)
        await self._dispatch()
        return delivered

    async def flush(self) -> int:
        """End-of-stream: flush every attachment, end every iteration."""
        if self._achain_flush is None:
            return await self._flush_terminal(None)
        ctx = MiddlewareContext("on_flush", hub=self)
        result = await self._achain_flush(ctx)
        return 0 if result is None else result

    async def _flush_terminal(self, ctx) -> int:
        delivered = self._hub.flush()
        await self._dispatch()
        for attachment in list(self._attachments):
            await attachment._send_done()
        self._raise_sink_errors()
        return delivered

    async def close(self) -> int:
        if self._hub.is_closed:
            return 0
        # an implicit end-of-stream flush still runs the on_flush chain
        if self._achain_close is None or self._hub._flushed:
            return await self._close_terminal(None)
        ctx = MiddlewareContext("on_flush", hub=self)
        result = await self._achain_close(ctx)
        return 0 if result is None else result

    async def _close_terminal(self, ctx) -> int:
        delivered = self._hub.close()
        await self._dispatch()
        for attachment in list(self._attachments):
            await attachment._send_done()
        self._raise_sink_errors()
        return delivered

    async def aclose(self) -> int:
        """Graceful shutdown: flush the hub (trailing windows emit and
        their matches are *delivered*), detach every attachment with
        its ``on_detach`` chain running exactly once, unblock every
        iterating consumer, and release engine resources.  Idempotent;
        returns the number of matches the final flush surfaced.

        This is the drain path a serving runtime needs: after
        ``aclose()`` every ``async for match in attachment`` loop has
        ended normally (no match discarded, unlike :meth:`abort`) and
        the hub rejects further pushes.
        """
        if self._hub.is_closed:
            return 0
        delivered = 0
        try:
            if not self._hub._flushed:
                delivered = await self.flush()
        finally:
            for attachment in list(self._attachments):
                # idempotent per attachment: runs its on_detach chain
                # once, sends the end-of-iteration sentinel, and drops
                # it from the dispatch loop
                await attachment.detach()
            self._hub.close()
        return delivered

    def abort(self) -> None:
        """Error path: release engines and unblock every iterating
        consumer (their ``async for`` ends immediately)."""
        self._hub.abort()
        for attachment in self._attachments:
            attachment._abort_queue()

    def stats(self) -> HubStats:
        return self._hub.stats()

    async def __aenter__(self) -> "AsyncStreamHub":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            await self.close()
