"""``repro.resilience`` — fault injection and recovery primitives.

The layer has two halves:

* **Injection** (:mod:`repro.resilience.chaos`) — seeded, deterministic
  fault injectors for every boundary in the stack: event drop /
  duplicate / delay riding the interception pipeline
  (:class:`ChaosMiddleware`), sink exceptions (:func:`flaky_sink`),
  transient WAL write failures (:class:`FlakyWalWriter`), and abrupt
  connection resets (:class:`ConnectionChaos`).  Every injector counts
  what it did; the chaos suite replays the same seed and asserts the
  core invariants survive.
* **Recovery** (:mod:`repro.resilience.backoff`) — the deterministic
  exponential :class:`Backoff` schedule that drives client
  auto-reconnect (:class:`repro.server.client.ReconnectingClient` and
  ``python -m repro client --reconnect``).
"""

from repro.resilience.backoff import Backoff
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosMiddleware,
    ConnectionChaos,
    FlakyWalWriter,
    effective_stream,
    flaky_sink,
)

__all__ = [
    "Backoff",
    "ChaosConfig",
    "ChaosError",
    "ChaosMiddleware",
    "ConnectionChaos",
    "FlakyWalWriter",
    "effective_stream",
    "flaky_sink",
]
