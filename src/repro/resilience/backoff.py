"""Deterministic exponential backoff with jitter and caps.

:class:`Backoff` is a plain schedule object — it never sleeps.  Callers
ask for the next delay and sleep themselves, which keeps the schedule
unit-testable and lets the chaos suite assert reconnect behaviour
without wall-clock flakiness.  With a fixed ``seed`` the jittered
sequence is fully reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

__all__ = ["Backoff"]


class Backoff:
    """Exponential backoff schedule: ``initial * multiplier**n``,
    clamped to ``max_delay``, with symmetric ``jitter`` (a fraction:
    ``0.1`` perturbs each delay by up to ±10%).

    ``max_retries=None`` retries forever; otherwise :meth:`next_delay`
    raises :class:`StopIteration` once the budget is spent.
    """

    def __init__(self, *, initial: float = 0.2, multiplier: float = 2.0,
                 max_delay: float = 5.0, max_retries: Optional[int] = None,
                 jitter: float = 0.1, seed: Optional[int] = None) -> None:
        if initial <= 0:
            raise ValueError("initial delay must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.initial = initial
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.max_retries = max_retries
        self.jitter = jitter
        self._rng = random.Random(seed)
        self.attempts = 0

    def reset(self) -> None:
        """Forget past failures — call after a successful reconnect so
        the next outage starts from ``initial`` again."""
        self.attempts = 0

    def next_delay(self) -> float:
        """The delay to sleep before the next attempt.

        Raises :class:`StopIteration` when ``max_retries`` attempts
        have already been handed out.
        """
        if self.max_retries is not None and self.attempts >= self.max_retries:
            raise StopIteration(f"retry budget exhausted "
                                f"({self.max_retries} attempts)")
        base = min(self.initial * (self.multiplier ** self.attempts),
                   self.max_delay)
        self.attempts += 1
        if self.jitter:
            base *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return base

    def delays(self) -> Iterator[float]:
        """Iterate the remaining schedule (stops at ``max_retries``)."""
        while True:
            try:
                yield self.next_delay()
            except StopIteration:
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Backoff(initial={self.initial}, "
                f"multiplier={self.multiplier}, "
                f"max_delay={self.max_delay}, "
                f"max_retries={self.max_retries}, "
                f"attempts={self.attempts})")
