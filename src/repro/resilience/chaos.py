"""Seeded, deterministic fault injection for every layer boundary.

:class:`ChaosMiddleware` rides the interception pipeline
(:mod:`repro.middleware`) on a hub's ingestion path and perturbs the
event stream — dropping, duplicating and delaying events — using one
seeded :class:`random.Random`, so a chaos run is exactly reproducible
from its seed and the *effective* stream a faulted hub ingested can be
recomputed offline (:func:`effective_stream`) to build parity oracles.

The other injectors cover boundaries middleware hooks cannot reach:

* :func:`flaky_sink` — wraps a sink callable so it raises
  :class:`ChaosError` on seeded picks.  Sink exceptions are isolated
  by :class:`~repro.middleware.sinks.SinkDispatchMiddleware`'s
  delivery loop, so injection exercises the recorded-error path
  (``on_error`` chain + aggregated ``SinkError``) rather than
  crashing ingestion.
* :class:`FlakyWalWriter` — wraps a
  :class:`~repro.durability.wal.WalWriter` so ``append`` raises a
  transient :class:`OSError` on seeded picks, exercising the
  :class:`~repro.durability.manager.DurabilityManager` write-retry
  path.
* :class:`ConnectionChaos` — a server-side per-frame decision source
  the connection driver consults to abruptly reset sockets
  (no ``goodbye``, no close frame), exercising client auto-reconnect
  and durable-cursor resume.

Placement matters on a durable hub: install the chaos middleware
*outside* :class:`~repro.durability.middleware.DurabilityMiddleware`
(``DurabilityManager.start(middleware=[chaos])`` does this) so the WAL
journals the post-fault stream — a dropped event is never logged, a
duplicated event is logged twice — and recovery replays exactly what
the live hub ingested.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.middleware.base import Middleware, MiddlewareContext

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosMiddleware",
    "ConnectionChaos",
    "FlakyWalWriter",
    "effective_stream",
    "flaky_sink",
]


class ChaosError(RuntimeError):
    """An injected failure (distinguishable from organic bugs)."""


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, at which rates.  All faults default off, so
    ``ChaosConfig(seed=7, drop_rate=0.05)`` injects exactly one fault
    family.  Rates are per-event probabilities drawn from one seeded
    stream; ``drop + dup + delay`` must not exceed 1."""

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    #: delayed events held back at once; further delays pass through
    max_held: int = 8
    #: probability a wrapped sink raises on one delivery
    sink_error_rate: float = 0.0
    #: probability one WAL append raises a transient ``OSError``
    wal_fail_rate: float = 0.0
    #: reset a connection after every Nth handled frame (server hook)
    reset_after: Optional[int] = None
    #: per-frame reset probability (server hook)
    reset_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate",
                     "sink_error_rate", "wal_fail_rate", "reset_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_rate + self.dup_rate + self.delay_rate > 1.0:
            raise ValueError("drop_rate + dup_rate + delay_rate > 1")
        if self.max_held < 0:
            raise ValueError("max_held must be >= 0")


class ChaosMiddleware(Middleware):
    """Deterministic event-level fault injection on a hub's ingestion
    chain (``on_push`` / ``on_push_many`` / ``on_flush``).

    Faults, decided by one draw per event from ``Random(config.seed)``:

    * **drop** — the event never reaches the core (short-circuit);
    * **duplicate** — the event is ingested twice back to back;
    * **delay** — the event is held and re-injected in front of a
      later push (bounded by ``max_held``; anything still held when
      the hub flushes is released first, through the full remaining
      chain, so durability journals the release before the flush
      record).

    The middleware is hub-scoped (it re-injects via ``context.hub`` on
    flush) and works under both the sync :class:`~repro.hub.core.StreamHub`
    and the asyncio facade.  ``counters``/:meth:`stats` expose per-fault
    totals for ``/metrics``.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        # separate stream: sink faults don't perturb event-fault picks
        self._sink_rng = random.Random(config.seed ^ 0x5EED51EC)
        self._held: list = []
        self._passthrough = False
        self.counters: dict[str, int] = {
            "events_seen": 0,
            "events_dropped": 0,
            "events_duplicated": 0,
            "events_delayed": 0,
            "events_released": 0,
            "sink_errors_injected": 0,
            "sink_errors_observed": 0,
            "wal_failures_injected": 0,
        }

    # -- fault plan ---------------------------------------------------

    def _fate(self) -> Optional[str]:
        cfg = self.config
        cut = cfg.drop_rate + cfg.dup_rate + cfg.delay_rate
        if cut <= 0.0:
            return None
        draw = self._rng.random()
        if draw < cfg.drop_rate:
            return "drop"
        if draw < cfg.drop_rate + cfg.dup_rate:
            return "dup"
        if draw < cut:
            return "delay"
        return None

    # -- ingestion hooks ----------------------------------------------

    def on_push(self, context: MiddlewareContext, call_next):
        if self._passthrough:
            return call_next(context)
        counters = self.counters
        counters["events_seen"] += 1
        event = context.event
        fate = self._fate()
        if fate == "delay":
            if len(self._held) < self.config.max_held:
                counters["events_delayed"] += 1
                self._held.append(event)
                return None  # re-injected in front of a later push
            fate = None  # hold budget spent: pass through
        to_push = []
        if self._held:
            counters["events_released"] += len(self._held)
            to_push.extend(self._held)
            self._held.clear()
        if fate == "drop":
            counters["events_dropped"] += 1
        elif fate == "dup":
            counters["events_duplicated"] += 1
            to_push.extend((event, event))
        else:
            to_push.append(event)
        if not to_push:
            return None
        return self._run_pushes(context, call_next, to_push)

    def _run_pushes(self, context, call_next, events):
        """Forward each event down the remaining chain (the downstream
        links and the terminal read ``context.event`` at call time).
        Returns the last result, or an awaitable of it under the
        asyncio facade."""
        context.event = events[0]
        result = call_next(context)
        if inspect.isawaitable(result):
            return self._run_pushes_async(context, call_next,
                                          events, result)
        for event in events[1:]:
            context.event = event
            result = call_next(context)
        return result

    async def _run_pushes_async(self, context, call_next, events, first):
        result = await first
        for event in events[1:]:
            context.event = event
            result = await call_next(context)
        return result

    def on_push_many(self, context: MiddlewareContext, call_next):
        if self._passthrough:
            return call_next(context)
        counters = self.counters
        events = context.events
        counters["events_seen"] += len(events)
        out = []
        if self._held:  # delayed events re-enter ahead of this chunk
            counters["events_released"] += len(self._held)
            out.extend(self._held)
            self._held.clear()
        for event in events:
            fate = self._fate()
            if fate == "drop":
                counters["events_dropped"] += 1
            elif fate == "dup":
                counters["events_duplicated"] += 1
                out.extend((event, event))
            elif fate == "delay" and len(self._held) < self.config.max_held:
                counters["events_delayed"] += 1
                self._held.append(event)
            else:
                out.append(event)
        if not out:
            return None  # whole chunk dropped/held
        context.events = out
        return call_next(context)

    def on_flush(self, context: MiddlewareContext, call_next):
        if self._passthrough or not self._held:
            return call_next(context)
        held, self._held = self._held, []
        self.counters["events_released"] += len(held)
        hub = context.hub
        if hub is None:  # session-scoped flush: nothing to re-inject into
            return call_next(context)
        # Re-inject through the hub's own push path so every remaining
        # middleware (durability's journal in particular) sees the
        # release *before* the flush record.  _passthrough keeps the
        # reentrant pass fault-free — held events were faulted once.
        self._passthrough = True
        pushed = hub.push_many(held)
        if inspect.isawaitable(pushed):
            return self._flush_release_async(pushed, context, call_next)
        self._passthrough = False
        # the sync hub reuses one context object across operations; the
        # reentrant push_many clobbered it, so restore the flush shape
        context.hook = "on_flush"
        context.event = None
        context.events = None
        context.hub = hub
        return call_next(context)

    async def _flush_release_async(self, pushed, context, call_next):
        try:
            await pushed
        finally:
            self._passthrough = False
        result = call_next(context)
        if inspect.isawaitable(result):
            result = await result
        return result

    # -- delivery-side observation ------------------------------------

    def on_error(self, context: MiddlewareContext, call_next):
        if isinstance(context.error, ChaosError):
            self.counters["sink_errors_observed"] += 1
        return call_next(context)  # keep the terminal's error record

    # -- companion injectors ------------------------------------------

    def wrap_sink(self, sink: Callable) -> Callable:
        """Wrap ``sink`` to raise :class:`ChaosError` at
        ``config.sink_error_rate``, counted in :attr:`counters`."""
        def on_injected() -> None:
            self.counters["sink_errors_injected"] += 1
        return flaky_sink(sink, rate=self.config.sink_error_rate,
                          rng=self._sink_rng, on_injected=on_injected)

    def wrap_wal_writer(self, writer) -> "FlakyWalWriter":
        """Wrap a WAL writer to fail ``append`` transiently at
        ``config.wal_fail_rate`` (pass as ``wal_writer_wrapper`` to
        :class:`~repro.durability.manager.DurabilityManager`)."""
        def on_injected() -> None:
            self.counters["wal_failures_injected"] += 1
        return FlakyWalWriter(writer, rate=self.config.wal_fail_rate,
                              seed=self.config.seed ^ 0x3A105,
                              on_injected=on_injected)

    def connection_chaos(self) -> "ConnectionChaos":
        """A per-frame connection-reset decision source configured
        from ``reset_after`` / ``reset_rate``."""
        return ConnectionChaos(seed=self.config.seed ^ 0xC09E,
                               reset_after=self.config.reset_after,
                               reset_rate=self.config.reset_rate)

    # -- observability ------------------------------------------------

    @property
    def held(self) -> int:
        """Events currently delayed (not yet re-injected)."""
        return len(self._held)

    def stats(self) -> dict:
        """Per-fault counters plus the live hold count — flattened
        into ``/metrics`` gauges by ``observe_stats``."""
        out = dict(self.counters)
        out["events_held"] = len(self._held)
        return out


def flaky_sink(sink: Callable, *, rate: float = 0.1,
               seed: Optional[int] = None, rng: Optional[random.Random] = None,
               on_injected: Optional[Callable[[], None]] = None) -> Callable:
    """Wrap ``sink`` so it raises :class:`ChaosError` on seeded picks.

    The wrapper is delivery-isolated by design:
    ``SinkDispatchMiddleware`` catches sink exceptions, records them
    through the ``on_error`` chain, and aggregates them into the
    :class:`~repro.middleware.sinks.SinkError` raised at flush/close —
    injection never crashes ingestion.
    """
    picks = rng if rng is not None else random.Random(seed)

    def wrapper(match):
        if rate and picks.random() < rate:
            if on_injected is not None:
                on_injected()
            raise ChaosError("injected sink failure")
        return sink(match)

    wrapper.__name__ = getattr(sink, "__name__", "sink") + "__flaky"
    wrapper.__wrapped__ = sink
    return wrapper


class FlakyWalWriter:
    """A :class:`~repro.durability.wal.WalWriter` proxy whose
    ``append`` raises a transient ``OSError`` on seeded picks.

    ``max_failures`` bounds the total injected (``rate=1.0,
    max_failures=2`` fails exactly the next two appends, then behaves);
    everything else (``flush_os``/``sync``/``close``/``path``/byte
    counters) delegates to the wrapped writer, so the manager's retry
    path is the only code that notices.
    """

    def __init__(self, inner, *, rate: float = 0.0, seed: int = 0,
                 max_failures: Optional[int] = None,
                 on_injected: Optional[Callable[[], None]] = None) -> None:
        self._inner = inner
        self._rng = random.Random(seed)
        self.rate = rate
        self.max_failures = max_failures
        self.failures_injected = 0
        self._on_injected = on_injected

    def append(self, record) -> int:
        if (self.rate
                and (self.max_failures is None
                     or self.failures_injected < self.max_failures)
                and self._rng.random() < self.rate):
            self.failures_injected += 1
            if self._on_injected is not None:
                self._on_injected()
            raise OSError("chaos: injected WAL write failure")
        return self._inner.append(record)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self._inner.close()


class ConnectionChaos:
    """Server-side per-frame reset decisions: the connection driver
    asks :meth:`should_reset` after handling each inbound frame and
    abruptly closes the transport (no ``goodbye``) on ``True`` —
    indistinguishable, to the client, from a network partition."""

    def __init__(self, *, seed: int = 0, reset_after: Optional[int] = None,
                 reset_rate: float = 0.0) -> None:
        self._rng = random.Random(seed)
        self.reset_after = reset_after
        self.reset_rate = reset_rate
        self.frames_seen = 0
        self.connections_reset = 0

    def should_reset(self) -> bool:
        self.frames_seen += 1
        if self.reset_after is not None \
                and self.frames_seen % self.reset_after == 0:
            self.connections_reset += 1
            return True
        if self.reset_rate and self._rng.random() < self.reset_rate:
            self.connections_reset += 1
            return True
        return False

    def stats(self) -> dict:
        return {"frames_seen": self.frames_seen,
                "connections_reset": self.connections_reset}


def effective_stream(config: ChaosConfig, events, *,
                     chunk: Optional[int] = None) -> list:
    """The exact post-fault stream a hub behind
    ``ChaosMiddleware(config)`` ingests when fed ``events`` — per-event
    ``push`` when ``chunk`` is ``None``, else ``push_many`` in chunks —
    followed by one ``flush``.  Chaos parity oracles feed this stream
    to a bare hub and assert identical matches.
    """
    middleware = ChaosMiddleware(config)
    out: list = []

    def capture_one(ctx):
        out.append(ctx.event)

    def capture_many(ctx):
        out.extend(ctx.events)

    if chunk is None:
        ctx = MiddlewareContext("on_push")
        for event in events:
            ctx.event = event
            middleware.on_push(ctx, capture_one)
    else:
        items = list(events)
        for start in range(0, len(items), chunk):
            ctx = MiddlewareContext("on_push_many",
                                    events=items[start:start + chunk])
            middleware.on_push_many(ctx, capture_many)

    class _CaptureHub:
        @staticmethod
        def push_many(held):
            out.extend(held)
            return 0

    flush_ctx = MiddlewareContext("on_flush", hub=_CaptureHub())
    middleware.on_flush(flush_ctx, lambda ctx: None)
    return out
